#include "ontology/snomed_generator.h"

#include <array>
#include <string>

#include "common/random.h"

namespace fairrec {

namespace {

// Realistic cluster labels; cycled with a numeric suffix when
// num_clusters exceeds the list.
constexpr std::array<std::string_view, 12> kClusterNames = {
    "Disorder of respiratory system", "Disorder of cardiovascular system",
    "Disorder of digestive system",   "Disorder of nervous system",
    "Disorder of musculoskeletal system", "Disorder of endocrine system",
    "Disorder of immune system",      "Disorder of skin",
    "Mental disorder",                "Neoplastic disease",
    "Infectious disease",             "Disorder of urinary system"};

std::string ClusterName(int32_t index) {
  const auto base = kClusterNames[static_cast<size_t>(index) % kClusterNames.size()];
  if (static_cast<size_t>(index) < kClusterNames.size()) return std::string(base);
  return std::string(base) + " variant " +
         std::to_string(index / static_cast<int32_t>(kClusterNames.size()));
}

}  // namespace

Result<SyntheticOntology> GenerateSnomedLikeOntology(
    const SnomedGeneratorConfig& config) {
  if (config.num_clusters <= 0) {
    return Status::InvalidArgument("num_clusters must be positive");
  }
  if (config.cluster_depth < 1) {
    return Status::InvalidArgument("cluster_depth must be >= 1");
  }
  if (config.min_branch < 1 || config.max_branch < config.min_branch) {
    return Status::InvalidArgument("need 1 <= min_branch <= max_branch");
  }

  Rng rng(config.seed);
  OntologyBuilder builder;
  FAIRREC_ASSIGN_OR_RETURN(const ConceptId root,
                           builder.AddRoot("SNOMED CT Concept"));
  FAIRREC_ASSIGN_OR_RETURN(const ConceptId finding,
                           builder.AddChild(root, "Clinical finding"));

  SyntheticOntology out;
  for (int32_t c = 0; c < config.num_clusters; ++c) {
    const std::string cluster_name = ClusterName(c);
    FAIRREC_ASSIGN_OR_RETURN(const ConceptId cluster_root,
                             builder.AddChild(finding, cluster_name));
    out.cluster_roots.push_back(cluster_root);
    out.cluster_concepts.emplace_back();

    // Grow the subtree level by level.
    std::vector<ConceptId> level{cluster_root};
    int32_t counter = 0;
    for (int32_t depth = 1; depth <= config.cluster_depth; ++depth) {
      std::vector<ConceptId> next_level;
      for (const ConceptId parent : level) {
        const auto fanout = static_cast<int32_t>(
            rng.UniformInt(config.min_branch, config.max_branch));
        for (int32_t k = 0; k < fanout; ++k) {
          const std::string name = cluster_name + " finding " +
                                   std::to_string(depth) + "." +
                                   std::to_string(counter++);
          FAIRREC_ASSIGN_OR_RETURN(const ConceptId child,
                                   builder.AddChild(parent, name));
          next_level.push_back(child);
          out.cluster_concepts.back().push_back(child);
        }
      }
      level = std::move(next_level);
    }
  }

  FAIRREC_ASSIGN_OR_RETURN(out.ontology, builder.Build());
  return out;
}

Result<Ontology> BuildPaperFixtureOntology() {
  OntologyBuilder builder;
  // Depths chosen so that the two path lengths quoted in §V-C hold:
  //   path(Acute bronchitis[4], Chest pain[3]) via Clinical finding[1] = 3+2 = 5
  //   path(Tracheobronchitis[4], Acute bronchitis[4]) via Bronchitis[3] = 2
  FAIRREC_ASSIGN_OR_RETURN(const ConceptId root,
                           builder.AddRoot("SNOMED CT Concept"));
  FAIRREC_ASSIGN_OR_RETURN(const ConceptId finding,
                           builder.AddChild(root, "Clinical finding"));
  FAIRREC_ASSIGN_OR_RETURN(
      const ConceptId respiratory,
      builder.AddChild(finding, "Disorder of respiratory system"));
  FAIRREC_ASSIGN_OR_RETURN(const ConceptId bronchitis,
                           builder.AddChild(respiratory, "Bronchitis"));
  FAIRREC_RETURN_NOT_OK(builder.AddChild(bronchitis, "Acute bronchitis").status());
  FAIRREC_RETURN_NOT_OK(
      builder.AddChild(bronchitis, "Tracheobronchitis").status());
  FAIRREC_ASSIGN_OR_RETURN(const ConceptId by_site,
                           builder.AddChild(finding, "Finding by site"));
  FAIRREC_RETURN_NOT_OK(builder.AddChild(by_site, "Chest pain").status());
  FAIRREC_ASSIGN_OR_RETURN(const ConceptId injury,
                           builder.AddChild(finding, "Traumatic injury"));
  FAIRREC_ASSIGN_OR_RETURN(const ConceptId fracture,
                           builder.AddChild(injury, "Fracture of upper limb"));
  FAIRREC_RETURN_NOT_OK(builder.AddChild(fracture, "Broken arm").status());
  return builder.Build();
}

}  // namespace fairrec
