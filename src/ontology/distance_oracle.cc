#include "ontology/distance_oracle.h"

#include <deque>
#include <vector>

#include "common/logging.h"

namespace fairrec {

namespace {
uint64_t PairKey(ConceptId a, ConceptId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}
}  // namespace

ConceptDistanceOracle::ConceptDistanceOracle(const Ontology* ontology)
    : ontology_(ontology) {
  FAIRREC_CHECK(ontology != nullptr);
}

int32_t ConceptDistanceOracle::Distance(ConceptId a, ConceptId b) {
  FAIRREC_DCHECK(ontology_->IsValid(a) && ontology_->IsValid(b));
  if (a == b) return 0;
  const uint64_t key = PairKey(a, b);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  const int32_t d = ontology_->PathLength(a, b);
  std::lock_guard<std::mutex> lock(mu_);
  cache_.emplace(key, d);
  return d;
}

double ConceptDistanceOracle::Similarity(ConceptId a, ConceptId b) {
  return 1.0 / (1.0 + static_cast<double>(Distance(a, b)));
}

int32_t ConceptDistanceOracle::DistanceByBfs(ConceptId a, ConceptId b) const {
  FAIRREC_DCHECK(ontology_->IsValid(a) && ontology_->IsValid(b));
  if (a == b) return 0;
  std::vector<int32_t> dist(static_cast<size_t>(ontology_->num_concepts()), -1);
  std::deque<ConceptId> frontier{a};
  dist[static_cast<size_t>(a)] = 0;
  while (!frontier.empty()) {
    const ConceptId c = frontier.front();
    frontier.pop_front();
    const int32_t d = dist[static_cast<size_t>(c)];
    auto visit = [&](ConceptId next) {
      if (next == kInvalidConceptId) return false;
      auto& slot = dist[static_cast<size_t>(next)];
      if (slot != -1) return false;
      slot = d + 1;
      if (next == b) return true;
      frontier.push_back(next);
      return false;
    };
    if (visit(ontology_->ParentOf(c))) return d + 1;
    for (ConceptId child : ontology_->ChildrenOf(c)) {
      if (visit(child)) return d + 1;
    }
  }
  return -1;  // unreachable in a tree, defensive for future DAG support
}

size_t ConceptDistanceOracle::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace fairrec
