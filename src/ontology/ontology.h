#ifndef FAIRREC_ONTOLOGY_ONTOLOGY_H_
#define FAIRREC_ONTOLOGY_ONTOLOGY_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace fairrec {

/// Dense identifier of an ontology concept (a SNOMED-CT term stand-in).
using ConceptId = int32_t;

inline constexpr ConceptId kInvalidConceptId = -1;

/// Immutable is-a concept hierarchy standing in for the SNOMED-CT class tree
/// of §V-C. Concept 0 is always the root. Single-parent (tree) by
/// construction; the BFS distance oracle treats edges as undirected, exactly
/// as the paper's "shortest path that connects those two nodes in the tree".
///
/// Construct via OntologyBuilder.
class Ontology {
 public:
  Ontology() = default;

  int32_t num_concepts() const { return static_cast<int32_t>(parents_.size()); }

  bool IsValid(ConceptId c) const { return c >= 0 && c < num_concepts(); }

  /// The root ("SNOMED CT Concept" in the real ontology).
  ConceptId root() const { return 0; }

  /// Parent of `c`; kInvalidConceptId for the root.
  ConceptId ParentOf(ConceptId c) const;

  std::span<const ConceptId> ChildrenOf(ConceptId c) const;

  /// Depth of `c` (root = 0).
  int32_t DepthOf(ConceptId c) const;

  const std::string& NameOf(ConceptId c) const;

  /// Finds a concept by exact name; kInvalidConceptId if absent.
  ConceptId FindByName(std::string_view name) const;

  /// True iff `ancestor` lies on the root path of `c` (inclusive).
  bool IsAncestorOf(ConceptId ancestor, ConceptId c) const;

  /// Lowest common ancestor of two concepts. Precondition: valid ids.
  ConceptId LowestCommonAncestor(ConceptId a, ConceptId b) const;

  /// Tree distance in edges: depth(a) + depth(b) - 2*depth(lca). This *is*
  /// the undirected shortest path for a tree; the BFS oracle cross-checks it.
  int32_t PathLength(ConceptId a, ConceptId b) const;

 private:
  friend class OntologyBuilder;

  std::vector<ConceptId> parents_;       // per concept
  std::vector<int32_t> depths_;          // per concept
  std::vector<std::string> names_;       // per concept
  std::vector<std::vector<ConceptId>> children_;
  std::unordered_map<std::string, ConceptId> by_name_;
};

/// Builds an Ontology incrementally. The first added concept is the root.
class OntologyBuilder {
 public:
  OntologyBuilder() = default;

  /// Adds the root concept. Must be called exactly once, first.
  Result<ConceptId> AddRoot(std::string name);

  /// Adds a child of an existing concept. Names must be unique.
  Result<ConceptId> AddChild(ConceptId parent, std::string name);

  int32_t num_concepts() const { return static_cast<int32_t>(names_.size()); }

  /// Finalizes. The builder is left empty.
  Result<Ontology> Build();

 private:
  std::vector<ConceptId> parents_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, ConceptId> by_name_;
};

}  // namespace fairrec

#endif  // FAIRREC_ONTOLOGY_ONTOLOGY_H_
