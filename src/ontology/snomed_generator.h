#ifndef FAIRREC_ONTOLOGY_SNOMED_GENERATOR_H_
#define FAIRREC_ONTOLOGY_SNOMED_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "ontology/ontology.h"

namespace fairrec {

/// A synthetic stand-in for the (licensed) SNOMED-CT hierarchy.
///
/// The real ontology cannot be redistributed, so we generate a tree with the
/// same *shape* properties the semantic similarity of §V-C depends on: a
/// single root, a "Clinical finding" axis, and a set of body-system clusters
/// (subtrees). Concepts within a cluster are a short path apart; concepts in
/// different clusters must route near the root, giving long paths — exactly
/// the contrast the paper exploits (Table I: tracheobronchitis is 2 hops from
/// acute bronchitis but chest pain is 5 hops away).
struct SyntheticOntology {
  Ontology ontology;
  /// One subtree root per clinical cluster (e.g. per body system).
  std::vector<ConceptId> cluster_roots;
  /// All concepts inside each cluster subtree (excluding the cluster root).
  std::vector<std::vector<ConceptId>> cluster_concepts;
};

/// Knobs for the synthetic SNOMED-like generator.
struct SnomedGeneratorConfig {
  /// Number of body-system clusters under the "Clinical finding" axis.
  int32_t num_clusters = 8;
  /// Depth of each cluster subtree below its cluster root.
  int32_t cluster_depth = 4;
  /// Children per internal node: drawn uniformly in [min_branch, max_branch].
  int32_t min_branch = 2;
  int32_t max_branch = 3;
  uint64_t seed = 42;
};

/// Generates a synthetic ontology. Concept names are synthesized from cluster
/// names and indexes and are unique.
Result<SyntheticOntology> GenerateSnomedLikeOntology(
    const SnomedGeneratorConfig& config);

/// Hand-built fixture reproducing the exact paths behind the paper's Table I
/// discussion: path(acute bronchitis, chest pain) = 5 and
/// path(tracheobronchitis, acute bronchitis) = 2, plus the "Broken arm"
/// concept of Patient 3. Used by tests and the quickstart example.
///
/// Concept names (exact spellings): "SNOMED CT Concept", "Clinical finding",
/// "Disorder of respiratory system", "Bronchitis", "Acute bronchitis",
/// "Tracheobronchitis", "Finding by site", "Chest pain", "Traumatic injury",
/// "Fracture of upper limb", "Broken arm".
Result<Ontology> BuildPaperFixtureOntology();

}  // namespace fairrec

#endif  // FAIRREC_ONTOLOGY_SNOMED_GENERATOR_H_
