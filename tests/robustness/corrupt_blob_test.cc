// Fuzz-style corruption suite: every durable byte stream in the tree is
// systematically truncated, bit-flipped, and extended with garbage, and every
// reader must answer with a clean Status — never UB. CI runs this suite (ctest
// label `robustness`) under ASan/UBSan, which is what turns "never UB" from a
// review claim into a checked property.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>

#include "common/blob_io.h"
#include "common/random.h"
#include "dist/partial_artifact.h"
#include "ratings/delta_journal.h"
#include "ratings/rating_delta.h"
#include "ratings/rating_matrix.h"
#include "sim/durable_peer_graph.h"
#include "sim/moment_store.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"
#include "sim/tile_residency.h"

namespace fairrec {
namespace {

std::string ReadRawFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteRawFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

RatingMatrix CorpusMatrix() {
  RatingMatrixBuilder builder;
  Rng rng(0xc0ffee);
  for (UserId u = 0; u < 12; ++u) {
    for (ItemId i = 0; i < 9; ++i) {
      if (rng.NextBool(0.6)) {
        EXPECT_TRUE(
            builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5))).ok());
      }
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

/// Deterministic sample of positions to mutate: endpoints, field-boundary
/// neighborhoods, and a pseudo-random spread. Exhaustive per-byte loops are
/// kept for the small streams; big artifacts get this sample.
std::vector<size_t> SamplePositions(size_t size, size_t want) {
  std::vector<size_t> positions;
  if (size == 0) return positions;
  for (size_t p = 0; p < size && p < 32; ++p) positions.push_back(p);
  Rng rng(0x5eed);
  for (size_t i = 0; i < want; ++i) {
    positions.push_back(static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(size) - 1)));
  }
  positions.push_back(size - 1);
  return positions;
}

// ---------------------------------------------------------------------------
// Naked artifact deserializers (no container CRC of their own): corruption
// must never be UB, and truncation must always be detected.
// ---------------------------------------------------------------------------

template <typename Deserialize>
void ProbeNakedArtifact(const std::string& clean, Deserialize deserialize) {
  // Every strict prefix must fail: the formats are self-delimiting and end
  // with an exhaustion check, so missing bytes are always detectable.
  for (const size_t len : SamplePositions(clean.size(), 200)) {
    const auto parsed = deserialize(std::string_view(clean.data(), len));
    EXPECT_FALSE(parsed.ok()) << "prefix " << len << " parsed";
  }
  // Bit flips may parse (a flipped double can be a different valid value —
  // naked artifacts rely on the container CRC for integrity); the property
  // under test is that whatever happens is a clean Status or a valid
  // object, with every read bounds-checked (ASan enforces).
  for (const size_t pos : SamplePositions(clean.size(), 400)) {
    for (const uint8_t mask : {0x01, 0x80}) {
      std::string flipped = clean;
      flipped[pos] = static_cast<char>(flipped[pos] ^ mask);
      (void)deserialize(flipped);
    }
  }
  // Trailing garbage must be rejected (exhaustion check).
  EXPECT_FALSE(deserialize(clean + std::string(7, '\x5a')).ok());
  // And the pristine bytes still parse, proving the probes above exercised
  // the real format.
  EXPECT_TRUE(deserialize(clean).ok());
}

TEST(CorruptBlobTest, RatingMatrixDeserializeIsCorruptionSafe) {
  const RatingMatrix matrix = CorpusMatrix();
  std::string bytes;
  matrix.SerializeTo(bytes);
  ProbeNakedArtifact(
      bytes, [](std::string_view b) { return RatingMatrix::Deserialize(b); });
}

TEST(CorruptBlobTest, MomentStoreDeserializeIsCorruptionSafe) {
  const RatingMatrix matrix = CorpusMatrix();
  const PairwiseSimilarityEngine engine(&matrix, {}, {});
  MomentStoreOptions store_options;
  store_options.tile_users = 4;
  const MomentStore store =
      std::move(engine.BuildMomentStore(store_options)).ValueOrDie();
  std::string bytes;
  store.SerializeTo(bytes);
  ProbeNakedArtifact(
      bytes, [](std::string_view b) { return MomentStore::Deserialize(b); });
}

TEST(CorruptBlobTest, PeerIndexDeserializeIsCorruptionSafe) {
  const RatingMatrix matrix = CorpusMatrix();
  const PairwiseSimilarityEngine engine(&matrix, {}, {});
  PeerIndexOptions peer_options;
  peer_options.delta = 0.05;
  peer_options.max_peers_per_user = 6;
  const PeerIndex index =
      std::move(engine.BuildPeerIndex(peer_options)).ValueOrDie();
  std::string bytes;
  index.SerializeTo(bytes);
  ProbeNakedArtifact(
      bytes, [](std::string_view b) { return PeerIndex::Deserialize(b); });
}

TEST(CorruptBlobTest, RatingDeltaDeserializeIsCorruptionSafe) {
  RatingDelta delta;
  Rng rng(0xd31a);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(delta
                    .Add(static_cast<UserId>(rng.UniformInt(0, 30)),
                         static_cast<ItemId>(rng.UniformInt(0, 30)),
                         static_cast<Rating>(rng.UniformInt(1, 5)))
                    .ok());
  }
  std::string bytes;
  delta.SerializeTo(bytes);
  ProbeNakedArtifact(
      bytes, [](std::string_view b) { return RatingDelta::Deserialize(b); });
}

// ---------------------------------------------------------------------------
// Tile blobs: RestoreTile re-validates every entry, so even semantic
// corruption (not just framing damage) is caught.
// ---------------------------------------------------------------------------

TEST(CorruptBlobTest, TileRestoreIsCorruptionSafe) {
  const RatingMatrix matrix = CorpusMatrix();
  const PairwiseSimilarityEngine engine(&matrix, {}, {});
  MomentStoreOptions store_options;
  store_options.tile_users = 4;
  MomentStore store =
      std::move(engine.BuildMomentStore(store_options)).ValueOrDie();
  const std::string blob = store.SerializeTile(0);
  store.EvictTile(0);

  for (const size_t len : SamplePositions(blob.size(), 100)) {
    EXPECT_FALSE(store.RestoreTile(0, blob.substr(0, len)).ok())
        << "prefix " << len;
  }
  for (const size_t pos : SamplePositions(blob.size(), 300)) {
    std::string flipped = blob;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x40);
    const Status status = store.RestoreTile(0, flipped);
    if (status.ok()) {
      // The flip landed somewhere inert for framing AND passed semantic
      // validation — possible only for a moment-sum mantissa. The tile is
      // resident with finite moments; evict it again for the next probe.
      store.EvictTile(0);
    }
  }
  EXPECT_TRUE(store.RestoreTile(0, blob).ok());
}

// ---------------------------------------------------------------------------
// Residency spill files: damage to an on-disk spilled tile must surface as
// DataLoss when the tile is faulted back in — never a silently wrong restore,
// never UB.
// ---------------------------------------------------------------------------

TEST(CorruptBlobTest, SpilledTileCorruptionSurfacesAsDataLossOnRestore) {
  const std::string dir = testing::TempDir() + "/fairrec_robust_spill";
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  const RatingMatrix matrix = CorpusMatrix();
  const PairwiseSimilarityEngine engine(&matrix, {}, {});
  MomentStoreOptions store_options;
  store_options.tile_users = 4;
  MomentStore store =
      std::move(engine.BuildMomentStore(store_options)).ValueOrDie();
  // A budget of one tile forces everything else onto disk.
  auto manager = store.WithBudget(store.TileBytes(0) + 1, dir);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  ASSERT_TRUE(manager->EnforceBudget().ok());
  ASSERT_GT(manager->stats().spill_writes, 0);

  // Locate one spilled tile's blob file.
  size_t spilled = store.num_tiles();
  for (size_t t = 0; t < store.num_tiles(); ++t) {
    if (!store.TileResident(t)) {
      spilled = t;
      break;
    }
  }
  ASSERT_LT(spilled, store.num_tiles());
  const std::string path = dir + "/tile_" + std::to_string(spilled) + ".spill";
  const std::string clean = ReadRawFile(path);

  for (const size_t len : SamplePositions(clean.size(), 100)) {
    WriteRawFile(path, clean.substr(0, len));
    const Status faulted = manager->EnsureResident(spilled);
    EXPECT_TRUE(faulted.IsDataLoss())
        << "prefix " << len << ": " << faulted.ToString();
  }
  for (const size_t pos : SamplePositions(clean.size(), 300)) {
    std::string flipped = clean;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x20);
    WriteRawFile(path, flipped);
    const Status faulted = manager->EnsureResident(spilled);
    EXPECT_TRUE(faulted.IsDataLoss())
        << "bit flip at " << pos << ": " << faulted.ToString();
  }
  WriteRawFile(path, clean + std::string(5, '\x33'));
  EXPECT_TRUE(manager->EnsureResident(spilled).IsDataLoss());

  // The pristine blob still restores, and the whole store comes back.
  WriteRawFile(path, clean);
  ASSERT_TRUE(manager->EnsureResident(spilled).ok());
  ASSERT_TRUE(manager->RestoreAll().ok());
  const MomentStore reference =
      std::move(engine.BuildMomentStore(store_options)).ValueOrDie();
  EXPECT_TRUE(store == reference);
}

// ---------------------------------------------------------------------------
// The two on-disk files, attacked end to end through their top-level opens.
// ---------------------------------------------------------------------------

TEST(CorruptBlobTest, CheckpointFileCorruptionAlwaysSurfacesAsDataLoss) {
  const std::string dir = testing::TempDir() + "/fairrec_robust_ckpt";
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  const std::string path = DurablePeerGraph::CheckpointPathOf(dir);
  ASSERT_TRUE(RemovePath(path).ok());
  ASSERT_TRUE(RemovePath(DurablePeerGraph::JournalPathOf(dir)).ok());
  IncrementalPeerGraphOptions options;
  options.peers.delta = 0.05;
  {
    auto seeded = DurablePeerGraph::Open(dir, CorpusMatrix(), options);
    ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
  }
  const std::string clean = ReadRawFile(path);

  const auto expect_refused = [&](const std::string& label) {
    const auto opened = DurablePeerGraph::Open(dir, CorpusMatrix(), options);
    EXPECT_TRUE(opened.status().IsDataLoss())
        << label << ": " << opened.status().ToString();
  };
  for (const size_t len : SamplePositions(clean.size(), 150)) {
    WriteRawFile(path, clean.substr(0, len));
    expect_refused("truncated to " + std::to_string(len));
  }
  for (const size_t pos : SamplePositions(clean.size(), 300)) {
    std::string flipped = clean;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x02);
    WriteRawFile(path, flipped);
    expect_refused("bit flip at " + std::to_string(pos));
  }
  WriteRawFile(path, clean + "trailing garbage");
  expect_refused("trailing garbage");

  WriteRawFile(path, clean);
  const auto recovered = DurablePeerGraph::Open(dir, CorpusMatrix(), options);
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
}

TEST(CorruptBlobTest, JournalCorruptionIsDataLossTearingIsNot) {
  const std::string path = testing::TempDir() + "/fairrec_robust_journal.frj";
  ASSERT_TRUE(RemovePath(path).ok());
  {
    auto journal = DeltaJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    Rng rng(0x10a1);
    for (uint64_t seq = 1; seq <= 5; ++seq) {
      RatingDelta delta;
      for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE(delta
                        .Add(static_cast<UserId>(rng.UniformInt(0, 20)),
                             static_cast<ItemId>(rng.UniformInt(0, 20)),
                             static_cast<Rating>(rng.UniformInt(1, 5)))
                        .ok());
      }
      ASSERT_TRUE(journal->Append(seq, delta).ok());
    }
  }
  const std::string clean = ReadRawFile(path);

  // Truncation anywhere is a torn tail: Open succeeds and keeps exactly the
  // complete prefix.
  for (const size_t len : SamplePositions(clean.size(), 150)) {
    WriteRawFile(path, clean.substr(0, len));
    auto journal = DeltaJournal::Open(path);
    ASSERT_TRUE(journal.ok()) << "truncated to " << len << ": "
                              << journal.status().ToString();
    EXPECT_LE(journal->size_bytes(), len);
  }
  // A flip in any complete byte is corruption, exhaustively.
  for (size_t pos = 0; pos < clean.size(); ++pos) {
    std::string flipped = clean;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x10);
    WriteRawFile(path, flipped);
    EXPECT_TRUE(DeltaJournal::Open(path).status().IsDataLoss())
        << "bit flip at " << pos;
  }
  // Garbage appended after the last record: an incomplete "next record" —
  // torn tail, truncated away.
  WriteRawFile(path, clean + std::string(10, '\x7f'));
  {
    auto journal = DeltaJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    EXPECT_EQ(journal->size_bytes(), clean.size());
    EXPECT_EQ(journal->recovered_torn_bytes(), 10u);
  }
  ASSERT_TRUE(RemovePath(path).ok());
}

// ---------------------------------------------------------------------------
// Distributed-build artifacts: the naked PartialPeerArtifact bytes (manifest
// + rows framing, ownership validation) and the blob-container file a worker
// actually emits, attacked end to end through ReadFile.
// ---------------------------------------------------------------------------

PartialPeerArtifact CleanPartialArtifact(const RatingMatrix& matrix) {
  DistWorkerOptions options;
  options.peers.delta = 0.05;
  options.peers.max_peers_per_user = 6;
  auto artifact = BuildPartialPeerArtifact(
      matrix, MakePartition(0, 2, matrix.num_users()), /*attempt=*/1, options);
  EXPECT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_GT(artifact->rows.num_entries(), 0);
  return std::move(*artifact);
}

TEST(CorruptBlobTest, PartialPeerArtifactDeserializeIsCorruptionSafe) {
  const RatingMatrix matrix = CorpusMatrix();
  const PartialPeerArtifact artifact = CleanPartialArtifact(matrix);
  std::string bytes;
  artifact.SerializeTo(bytes);
  ProbeNakedArtifact(bytes, [](std::string_view b) {
    return PartialPeerArtifact::Deserialize(b);
  });
  // Unlike the other naked artifacts, both sections here are CRC-framed, so
  // bit flips are not merely "no UB": every single-bit flip must be refused.
  for (const size_t pos : SamplePositions(bytes.size(), 400)) {
    for (const uint8_t mask : {0x01, 0x80}) {
      std::string flipped = bytes;
      flipped[pos] = static_cast<char>(flipped[pos] ^ mask);
      const auto parsed = PartialPeerArtifact::Deserialize(flipped);
      EXPECT_FALSE(parsed.ok()) << "bit flip at " << pos << " parsed";
      if (!parsed.ok()) {
        EXPECT_TRUE(parsed.status().IsDataLoss())
            << "bit flip at " << pos << ": " << parsed.status().ToString();
      }
    }
  }
}

TEST(CorruptBlobTest, PartialArtifactFileCorruptionAlwaysSurfacesAsDataLoss) {
  const std::string dir = testing::TempDir() + "/fairrec_robust_partial";
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  const std::string path = dir + "/" + PartialArtifactFileName(0, 1);
  const RatingMatrix matrix = CorpusMatrix();
  const PartialPeerArtifact artifact = CleanPartialArtifact(matrix);
  ASSERT_TRUE(artifact.WriteFile(path).ok());
  const std::string clean = ReadRawFile(path);

  for (const size_t len : SamplePositions(clean.size(), 150)) {
    WriteRawFile(path, clean.substr(0, len));
    const auto read = PartialPeerArtifact::ReadFile(path);
    EXPECT_TRUE(read.status().IsDataLoss())
        << "truncated to " << len << ": " << read.status().ToString();
  }
  for (const size_t pos : SamplePositions(clean.size(), 300)) {
    std::string flipped = clean;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x08);
    WriteRawFile(path, flipped);
    const auto read = PartialPeerArtifact::ReadFile(path);
    EXPECT_TRUE(read.status().IsDataLoss())
        << "bit flip at " << pos << ": " << read.status().ToString();
  }
  WriteRawFile(path, clean + std::string(9, '\x41'));
  EXPECT_TRUE(PartialPeerArtifact::ReadFile(path).status().IsDataLoss());
  WriteRawFile(path, std::string(64, '\0'));
  EXPECT_TRUE(PartialPeerArtifact::ReadFile(path).status().IsDataLoss());

  // A corrupt file poisons a file-level merge with the same typed error (the
  // coordinator keys its requeue on it), and the pristine file still reads.
  const auto merged = MergePartialArtifactFiles({path});
  EXPECT_TRUE(merged.status().IsDataLoss()) << merged.status().ToString();
  WriteRawFile(path, clean);
  const auto read = PartialPeerArtifact::ReadFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read->rows == artifact.rows);
  ASSERT_TRUE(RemovePath(path).ok());
}

}  // namespace
}  // namespace fairrec
