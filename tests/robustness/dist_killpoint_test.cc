// Kill-point walk over the distributed-build protocol: a coordinator run is
// dry-run once to enumerate every failpoint the worker emit / merge consume
// path can die at (dist.worker.emit, dist.worker.finalize, dist.merge.consume,
// plus every blob.write.* boundary the artifact writes pass through), then
// re-run once per (site, k) with a crash injected at the k-th hit. Worker
// deaths must self-heal inside one Run (requeue + retry); a merge-time death
// is the coordinator's own, so Run fails with the injected crash and a fresh
// coordinator over the same directory must recover through artifact reuse.
// Every walk ends byte-identical to the single-process engine build.
//
// The fixture name keeps this walk inside CI's `-R KillpointRecoveryTest`
// seed-matrix job.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/blob_io.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "common/retry.h"
#include "dist/coordinator.h"
#include "dist/partial_artifact.h"
#include "ratings/rating_matrix.h"
#include "sim/pairwise_engine.h"

namespace fairrec {
namespace {

#if FAIRREC_FAILPOINTS_ENABLED

uint64_t ScriptSeed() {
  const char* env = std::getenv("FAIRREC_KILLPOINT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 0x5eedull;
}

RatingMatrix SeedMatrix(uint64_t seed) {
  RatingMatrixBuilder builder;
  Rng rng(seed);
  for (UserId u = 0; u < 18; ++u) {
    for (ItemId i = 0; i < 10; ++i) {
      if (rng.NextBool(0.45)) {
        EXPECT_TRUE(
            builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5))).ok());
      }
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

constexpr int32_t kPartitions = 3;

DistBuildOptions BuildOptions(const std::string& dir, FakeClock* clock) {
  DistBuildOptions options;
  options.num_partitions = kPartitions;
  // Serialized workers: the failpoint registry's hit order — and therefore
  // the (site, k) enumeration — stays deterministic.
  options.worker_slots = 1;
  options.artifact_dir = dir;
  options.worker.peers.delta = 0.1;
  options.worker.peers.max_peers_per_user = 5;
  options.retry.max_attempts = 4;
  options.retry.initial_backoff_millis = 10;
  options.retry.max_backoff_millis = 100;
  options.clock = clock;
  return options;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/fairrec_distkill_" + name;
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  auto leftovers = ListPartialArtifactFiles(dir);
  if (leftovers.ok()) {
    for (const std::string& path : *leftovers) {
      EXPECT_TRUE(RemovePath(path).ok());
    }
  }
  return dir;
}

TEST(KillpointRecoveryTest, DistBuildDiesEverywhereAndStillMatchesTheEngine) {
  const uint64_t seed = ScriptSeed();
  const RatingMatrix matrix = SeedMatrix(seed);

  const DistWorkerOptions worker = BuildOptions("unused", nullptr).worker;
  const PairwiseSimilarityEngine engine(&matrix, worker.similarity, {});
  const PeerIndex reference =
      std::move(engine.BuildPeerIndex(worker.peers)).ValueOrDie();
  ASSERT_GT(reference.num_entries(), 0);

  // ---- Dry run: enumerate the kill opportunities of one clean build. ----
  failpoint::Reset();
  {
    FakeClock clock;
    const std::string dir = FreshDir("dry");
    DistBuildCoordinator coordinator(&matrix, BuildOptions(dir, &clock));
    auto dry = coordinator.Run();
    ASSERT_TRUE(dry.ok()) << dry.status().ToString();
    ASSERT_TRUE(dry->index == reference);
  }
  struct KillPoint {
    std::string site;
    int64_t hits;
  };
  std::vector<KillPoint> kill_points;
  for (const std::string& site : failpoint::HitSites()) {
    // Bit-flip is silent corruption, not a crash; its detection guarantee is
    // covered by the corruption suites.
    if (site == kFailpointBlobWriteBitFlip) continue;
    kill_points.push_back({site, failpoint::HitCount(site)});
  }
  // The clean build must pass through all three dist protocol boundaries —
  // once per partition — plus the blob container's own write boundaries.
  for (const std::string_view site :
       {kFailpointDistWorkerEmit, kFailpointDistWorkerFinalize,
        kFailpointDistMergeConsume, kFailpointBlobWriteBegin,
        kFailpointBlobWriteTorn, kFailpointBlobWriteBeforeRename,
        kFailpointBlobWriteBeforeDirSync}) {
    EXPECT_EQ(failpoint::HitCount(site), kPartitions)
        << "site not hit once per partition in the dry run: " << site;
  }

  // ---- The walk. ----
  int walks = 0;
  for (const KillPoint& kp : kill_points) {
    for (int64_t k = 0; k < kp.hits; ++k) {
      const std::string label =
          kp.site + "@" + std::to_string(k) + " seed " + std::to_string(seed);
      const std::string dir = FreshDir("walk_" + std::to_string(walks));
      ++walks;
      failpoint::Reset();
      failpoint::Arm(kp.site, k);

      FakeClock clock;
      int coordinator_deaths = 0;
      Result<DistBuildResult> finished =
          DistBuildCoordinator(&matrix, BuildOptions(dir, &clock)).Run();
      while (!finished.ok()) {
        // A worker death self-heals inside Run; only a merge-time death (the
        // coordinator's own) may surface — anything else is a real bug.
        ASSERT_TRUE(failpoint::IsInjectedCrash(finished.status()))
            << label << ": " << finished.status().ToString();
        ASSERT_LT(++coordinator_deaths, 3) << label;
        finished = DistBuildCoordinator(&matrix, BuildOptions(dir, &clock)).Run();
      }
      ASSERT_GT(failpoint::HitCount(kp.site), k)
          << label << ": armed site never fired";
      EXPECT_TRUE(finished->index == reference) << label;
      std::string got_bytes;
      finished->index.SerializeTo(got_bytes);
      std::string want_bytes;
      reference.SerializeTo(want_bytes);
      EXPECT_EQ(got_bytes, want_bytes) << label;

      if (kp.site == kFailpointDistMergeConsume) {
        // The merge crash killed the first coordinator; recovery must have
        // adopted the already-built artifacts instead of rebuilding.
        EXPECT_EQ(coordinator_deaths, 1) << label;
        EXPECT_EQ(finished->stats.artifacts_reused, kPartitions) << label;
        EXPECT_EQ(finished->stats.attempts_launched, 0) << label;
      } else {
        // A worker-path crash is absorbed by the retry loop within one Run.
        EXPECT_EQ(coordinator_deaths, 0) << label;
        EXPECT_EQ(finished->stats.attempts_failed, 1) << label;
      }
    }
  }
  ASSERT_GT(walks, 0);
  failpoint::Reset();
}

#else  // !FAIRREC_FAILPOINTS_ENABLED

TEST(KillpointRecoveryTest, DistBuildDiesEverywhereAndStillMatchesTheEngine) {
  GTEST_SKIP() << "failpoints are compiled away in this build (NDEBUG); the "
                  "kill-point walk needs an assertion-enabled build";
}

#endif  // FAIRREC_FAILPOINTS_ENABLED

}  // namespace
}  // namespace fairrec
