// Randomized kill-point recovery suite: a scripted stream of rating batches
// with periodic checkpoints is dry-run once to enumerate every failpoint the
// durability layer can die at, then re-run once per (site, k) with an
// injected crash at the k-th hit of that site. After each crash the in-memory
// state is abandoned and recovery runs from disk, exactly like a process
// kill; the run then resumes from the recovered sequence number. Every walk
// must end byte-identical to the uninterrupted reference run.
//
// The script uses integer ratings on purpose: that is the regime where the
// incremental engine's patch path is bitwise-identical to a from-scratch
// rebuild, so the recovered state is exact no matter which plan the replay
// picks (the self-tuning planner's timings are not reproduced across runs).
//
// FAIRREC_KILLPOINT_SEED varies the scripted stream (CI runs a small seed
// matrix); the default keeps local runs deterministic.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "common/blob_io.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "ratings/rating_delta.h"
#include "ratings/rating_matrix.h"
#include "sim/durable_peer_graph.h"
#include "sim/tile_residency.h"

namespace fairrec {
namespace {

#if FAIRREC_FAILPOINTS_ENABLED

uint64_t ScriptSeed() {
  const char* env = std::getenv("FAIRREC_KILLPOINT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 0x5eedull;
}

RatingMatrix SeedMatrix(uint64_t seed) {
  RatingMatrixBuilder builder;
  Rng rng(seed);
  for (UserId u = 0; u < 10; ++u) {
    for (ItemId i = 0; i < 8; ++i) {
      if (rng.NextBool(0.5)) {
        EXPECT_TRUE(
            builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5))).ok());
      }
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

std::vector<RatingDelta> ScriptStream(uint64_t seed, int batches) {
  std::vector<RatingDelta> stream;
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  for (int b = 0; b < batches; ++b) {
    RatingDelta delta;
    const int64_t cells = rng.UniformInt(1, 4);
    for (int64_t c = 0; c < cells; ++c) {
      EXPECT_TRUE(delta
                      .Add(static_cast<UserId>(rng.UniformInt(0, 11)),
                           static_cast<ItemId>(rng.UniformInt(0, 9)),
                           static_cast<Rating>(rng.UniformInt(1, 5)))
                      .ok());
    }
    stream.push_back(std::move(delta));
  }
  return stream;
}

IncrementalPeerGraphOptions Options() {
  IncrementalPeerGraphOptions options;
  options.peers.delta = 0.1;
  options.peers.max_peers_per_user = 6;
  options.store.tile_users = 4;
  return options;
}

constexpr int kBatches = 6;
/// Checkpoint after these many applied batches (script positions).
constexpr int kCheckpointEvery = 2;

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/fairrec_kill_" + name;
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  EXPECT_TRUE(RemovePath(DurablePeerGraph::CheckpointPathOf(dir)).ok());
  EXPECT_TRUE(RemovePath(DurablePeerGraph::JournalPathOf(dir)).ok());
  return dir;
}

/// One attempt at the script: open (or recover), resume after the last
/// acknowledged batch, checkpoint on schedule. Returns the final state, or
/// the injected-crash status when the armed site fired.
Result<DurablePeerGraph> RunScript(const std::string& dir, uint64_t seed,
                                   const std::vector<RatingDelta>& stream,
                                   const IncrementalPeerGraphOptions& options) {
  FAIRREC_ASSIGN_OR_RETURN(
      DurablePeerGraph durable,
      DurablePeerGraph::Open(dir, SeedMatrix(seed), options));
  // applied_seq is the count of acknowledged batches: the crashed apply (if
  // any) was never acknowledged, so resuming here re-submits exactly the
  // batches the "client" never got an answer for.
  for (auto i = static_cast<size_t>(durable.applied_seq()); i < stream.size();
       ++i) {
    FAIRREC_RETURN_NOT_OK(durable.ApplyDelta(stream[i]).status());
    if ((i + 1) % kCheckpointEvery == 0) {
      FAIRREC_RETURN_NOT_OK(durable.Checkpoint());
    }
  }
  return durable;
}

void ExpectSameState(const DurablePeerGraph& got, const DurablePeerGraph& want,
                     const std::string& label) {
  EXPECT_TRUE(got.graph().matrix() == want.graph().matrix()) << label;
  EXPECT_TRUE(got.graph().store() == want.graph().store()) << label;
  EXPECT_TRUE(*got.graph().index() == *want.graph().index()) << label;
  EXPECT_EQ(got.applied_seq(), want.applied_seq()) << label;
}

TEST(KillpointRecoveryTest, EveryKillPointRecoversToTheReferenceState) {
  const uint64_t seed = ScriptSeed();
  const std::vector<RatingDelta> stream = ScriptStream(seed, kBatches);

  // ---- Dry run: count the kill opportunities per site. ----
  failpoint::Reset();
  const std::string reference_dir = FreshDir("reference");
  auto reference = RunScript(reference_dir, seed, stream, Options());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  struct KillPoint {
    std::string site;
    int64_t hits;
  };
  std::vector<KillPoint> kill_points;
  int64_t total = 0;
  for (const std::string& site : failpoint::HitSites()) {
    // The bit-flip site is not a crash: it reports success and corrupts the
    // file, a fault whose *detection* (DataLoss on the next read) is the
    // guarantee — covered by the corruption suites, not this walk.
    if (site == kFailpointBlobWriteBitFlip) continue;
    kill_points.push_back({site, failpoint::HitCount(site)});
    total += failpoint::HitCount(site);
  }
  // The scripted run must expose every boundary of the protocol.
  const std::set<std::string> sites_hit = [&] {
    std::set<std::string> s;
    for (const KillPoint& kp : kill_points) s.insert(kp.site);
    return s;
  }();
  for (const std::string_view site :
       {kFailpointBlobWriteBegin, kFailpointBlobWriteTorn,
        kFailpointBlobWriteBeforeRename, kFailpointBlobWriteBeforeDirSync,
        kFailpointJournalAppendBegin,
        kFailpointJournalAppendTorn, kFailpointJournalAppendBeforeFsync,
        kFailpointDurableApplyAfterJournal, kFailpointDurableCheckpointBegin,
        kFailpointDurableCheckpointBeforeTruncate}) {
    EXPECT_TRUE(sites_hit.count(std::string(site)) == 1)
        << "site never hit by the script: " << site;
  }
  ASSERT_GT(total, 0);

  // ---- The walk: one scripted run per (site, k), crash injected, recover,
  // resume, and land on the reference state. ----
  int walks = 0;
  for (const KillPoint& kp : kill_points) {
    for (int64_t k = 0; k < kp.hits; ++k) {
      const std::string label =
          kp.site + "@" + std::to_string(k) + " seed " + std::to_string(seed);
      const std::string dir =
          FreshDir("walk_" + std::to_string(walks));
      ++walks;
      failpoint::Reset();
      failpoint::Arm(kp.site, k);
      int crashes = 0;
      Result<DurablePeerGraph> finished = RunScript(dir, seed, stream, Options());
      while (!finished.ok()) {
        // Anything but the injected crash is a real durability bug.
        ASSERT_TRUE(failpoint::IsInjectedCrash(finished.status()))
            << label << ": " << finished.status().ToString();
        ASSERT_LT(++crashes, 4) << label;  // one arming = at most one crash
        finished = RunScript(dir, seed, stream, Options());
      }
      ASSERT_GE(crashes, 1) << label << ": armed site never fired";
      ExpectSameState(*finished, *reference, label);

      // A final clean reopen: what landed on disk must also recover to the
      // reference on its own (torn tails truncated, stale seqs skipped).
      failpoint::Reset();
      auto reopened = DurablePeerGraph::Open(dir, SeedMatrix(seed), Options());
      ASSERT_TRUE(reopened.ok()) << label << ": "
                                 << reopened.status().ToString();
      EXPECT_TRUE(reopened->recovery_info().recovered) << label;
      ExpectSameState(*reopened, *reference, label + " reopened");
    }
  }
  failpoint::Reset();
}

/// A residency budget adds one more place a process can die: mid-spill,
/// while a tile is being written to its blob. The spill file is written
/// atomically (tmp + rename) and carries no durability obligation — the
/// checkpoint/journal pair alone defines the recoverable state — so a crash
/// at the spill boundary must recover exactly like any other kill.
IncrementalPeerGraphOptions BudgetedOptions(const std::string& dir) {
  IncrementalPeerGraphOptions options = Options();
  options.store_budget_bytes = 6 * 1024;
  options.store_spill_dir = dir + "/spill";
  return options;
}

TEST(KillpointRecoveryTest, MidSpillCrashesRecoverUnderABudget) {
  const uint64_t seed = ScriptSeed();
  const std::vector<RatingDelta> stream = ScriptStream(seed, kBatches);

  // ---- Dry run under the budget: the script must actually spill. ----
  failpoint::Reset();
  const std::string reference_dir = FreshDir("budget_reference");
  auto reference =
      RunScript(reference_dir, seed, stream, BudgetedOptions(reference_dir));
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const int64_t spill_hits =
      failpoint::HitCount(std::string(kFailpointResidencySpill));
  ASSERT_GT(spill_hits, 0)
      << "the budgeted script never spilled a tile; the walk would be vacuous";
  // Whole-store comparisons need every tile resident.
  ASSERT_TRUE(reference->graph().EnsureStoreResident().ok());

  // ---- Crash at the k-th spill for every k, recover, resume, compare. ----
  for (int64_t k = 0; k < spill_hits; ++k) {
    const std::string label = std::string(kFailpointResidencySpill) + "@" +
                              std::to_string(k) + " seed " +
                              std::to_string(seed);
    const std::string dir = FreshDir("budget_walk_" + std::to_string(k));
    failpoint::Reset();
    failpoint::Arm(std::string(kFailpointResidencySpill), k);
    int crashes = 0;
    Result<DurablePeerGraph> finished =
        RunScript(dir, seed, stream, BudgetedOptions(dir));
    while (!finished.ok()) {
      ASSERT_TRUE(failpoint::IsInjectedCrash(finished.status()))
          << label << ": " << finished.status().ToString();
      ASSERT_LT(++crashes, 4) << label;
      finished = RunScript(dir, seed, stream, BudgetedOptions(dir));
    }
    ASSERT_GE(crashes, 1) << label << ": armed site never fired";
    ASSERT_TRUE(finished->graph().EnsureStoreResident().ok()) << label;
    ExpectSameState(*finished, *reference, label);

    // The surviving disk state (including any stale spill blobs from the
    // crashed attempt) must recover clean on a fresh open.
    failpoint::Reset();
    auto reopened =
        DurablePeerGraph::Open(dir, SeedMatrix(seed), BudgetedOptions(dir));
    ASSERT_TRUE(reopened.ok()) << label << ": " << reopened.status().ToString();
    EXPECT_TRUE(reopened->recovery_info().recovered) << label;
    ASSERT_TRUE(reopened->graph().EnsureStoreResident().ok()) << label;
    ExpectSameState(*reopened, *reference, label + " reopened");
  }
  failpoint::Reset();
}

#else  // !FAIRREC_FAILPOINTS_ENABLED

TEST(KillpointRecoveryTest, EveryKillPointRecoversToTheReferenceState) {
  GTEST_SKIP() << "failpoints are compiled away in this build (NDEBUG); the "
                  "kill-point walk needs an assertion-enabled build";
}

TEST(KillpointRecoveryTest, MidSpillCrashesRecoverUnderABudget) {
  GTEST_SKIP() << "failpoints are compiled away in this build (NDEBUG); the "
                  "kill-point walk needs an assertion-enabled build";
}

#endif  // FAIRREC_FAILPOINTS_ENABLED

}  // namespace
}  // namespace fairrec
