#include "common/status.h"

#include <gtest/gtest.h>

namespace fairrec {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryOk) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  const Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, EachFactoryMapsToItsCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopySemantics) {
  const Status original = Status::NotFound("missing");
  Status copy = original;  // copy constructor
  EXPECT_EQ(copy, original);
  Status assigned;
  assigned = original;  // copy assignment
  EXPECT_EQ(assigned, original);
  EXPECT_TRUE(assigned.IsNotFound());
  EXPECT_EQ(assigned.message(), "missing");
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status original = Status::IOError("disk");
  const Status moved = std::move(original);
  EXPECT_TRUE(moved.IsIOError());
  original = Status::OK();  // reassignment after move must be valid
  EXPECT_TRUE(original.ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  const auto fails = [] -> Status {
    FAIRREC_RETURN_NOT_OK(Status::OutOfRange("boom"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsOutOfRange());

  const auto passes = [] -> Status {
    FAIRREC_RETURN_NOT_OK(Status::OK());
    return Status::InvalidArgument("reached end");
  };
  EXPECT_TRUE(passes().IsInvalidArgument());
}

TEST(StatusDeathTest, CheckOKAbortsOnError) {
  EXPECT_DEATH(Status::Internal("fatal").CheckOK(), "Internal: fatal");
}

TEST(StatusTest, CheckOKPassesOnOk) {
  Status::OK().CheckOK();  // must not abort
}

}  // namespace
}  // namespace fairrec
