#include "common/blob_io.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>

#include "common/failpoint.h"

namespace fairrec {
namespace {

constexpr uint32_t kTag = 0x54455301u;  // arbitrary test artifact tag

std::string TestPath(const std::string& name) {
  return testing::TempDir() + "/fairrec_blob_" + name;
}

std::string ReadRawFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteRawFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

TEST(BlobPrimitivesTest, FieldsRoundTrip) {
  std::string bytes;
  BlobWriter writer(&bytes);
  writer.U32(0xdeadbeefu);
  writer.U64(0x0123456789abcdefull);
  writer.I32(-42);
  writer.I64(-1234567890123ll);
  writer.F64(3.25);
  writer.Bytes("tail");

  BlobReader reader(bytes);
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int32_t i32 = 0;
  int64_t i64 = 0;
  double f64 = 0;
  EXPECT_TRUE(reader.U32(&u32));
  EXPECT_TRUE(reader.U64(&u64));
  EXPECT_TRUE(reader.I32(&i32));
  EXPECT_TRUE(reader.I64(&i64));
  EXPECT_TRUE(reader.F64(&f64));
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -1234567890123ll);
  EXPECT_EQ(f64, 3.25);
  EXPECT_EQ(reader.remaining(), 4u);
  EXPECT_FALSE(reader.exhausted());
}

TEST(BlobPrimitivesTest, ReaderRefusesToReadPastTheEnd) {
  std::string bytes;
  BlobWriter writer(&bytes);
  writer.U32(7);
  BlobReader reader(bytes);
  uint64_t u64 = 0;
  // Four bytes present, eight requested: the read must fail and move
  // nothing, so the next bounded read still sees the four bytes.
  EXPECT_FALSE(reader.U64(&u64));
  uint32_t u32 = 0;
  EXPECT_TRUE(reader.U32(&u32));
  EXPECT_EQ(u32, 7u);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_FALSE(reader.U32(&u32));
}

TEST(BlobPrimitivesTest, FramedSectionRoundTripsAndLocalizesCorruption) {
  std::string bytes;
  BlobWriter writer(&bytes);
  writer.Framed("first section");
  writer.Framed("");
  writer.Framed("third");

  BlobReader reader(bytes);
  std::string_view a;
  std::string_view b;
  std::string_view c;
  ASSERT_TRUE(reader.FramedSection(&a).ok());
  ASSERT_TRUE(reader.FramedSection(&b).ok());
  ASSERT_TRUE(reader.FramedSection(&c).ok());
  EXPECT_EQ(a, "first section");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, "third");
  EXPECT_TRUE(reader.exhausted());

  // Flip one payload byte of the first section: only it fails.
  std::string corrupt = bytes;
  corrupt[sizeof(uint64_t) + sizeof(uint32_t)] ^= 0x01;
  BlobReader corrupt_reader(corrupt);
  EXPECT_TRUE(corrupt_reader.FramedSection(&a).IsDataLoss());
}

TEST(BlobPrimitivesTest, FramedSectionNeverTrustsTheLength) {
  std::string bytes;
  BlobWriter writer(&bytes);
  writer.Framed("payload");
  // Inflate the length field far past the bytes present; the bounded read
  // must fail cleanly instead of reaching for absent memory.
  const uint64_t huge = 1ull << 60;
  bytes.replace(0, sizeof(huge), reinterpret_cast<const char*>(&huge),
                sizeof(huge));
  BlobReader reader(bytes);
  std::string_view payload;
  EXPECT_TRUE(reader.FramedSection(&payload).IsDataLoss());
}

TEST(BlobFileTest, WriteReadRoundTrip) {
  const std::string path = TestPath("roundtrip.frb");
  ASSERT_TRUE(RemovePath(path).ok());
  const std::string payload = "some artifact bytes\x00with a nul inside";
  ASSERT_TRUE(WriteBlobFileAtomic(path, kTag, payload).ok());
  auto read = ReadBlobFile(path, kTag);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, payload);
  // Overwrite in place: the new payload fully replaces the old.
  ASSERT_TRUE(WriteBlobFileAtomic(path, kTag, "v2").ok());
  read = ReadBlobFile(path, kTag);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "v2");
  ASSERT_TRUE(RemovePath(path).ok());
}

TEST(BlobFileTest, MissingFileIsNotFoundNotDataLoss) {
  const auto read = ReadBlobFile(TestPath("never_written.frb"), kTag);
  EXPECT_TRUE(read.status().IsNotFound()) << read.status().ToString();
}

TEST(BlobFileTest, TypeTagMismatchIsRejected) {
  const std::string path = TestPath("tag.frb");
  ASSERT_TRUE(WriteBlobFileAtomic(path, kTag, "payload").ok());
  EXPECT_TRUE(ReadBlobFile(path, kTag + 1).status().IsDataLoss());
  ASSERT_TRUE(RemovePath(path).ok());
}

TEST(BlobFileTest, TruncationBitFlipAndGarbageAreDataLoss) {
  const std::string path = TestPath("corrupt.frb");
  ASSERT_TRUE(WriteBlobFileAtomic(path, kTag, "twelve bytes").ok());
  const std::string clean = ReadRawFile(path);

  // Truncation at every prefix length.
  for (size_t len = 0; len < clean.size(); ++len) {
    WriteRawFile(path, clean.substr(0, len));
    EXPECT_TRUE(ReadBlobFile(path, kTag).status().IsDataLoss())
        << "truncated to " << len;
  }
  // A bit flip in every byte (header and payload alike).
  for (size_t byte = 0; byte < clean.size(); ++byte) {
    std::string flipped = clean;
    flipped[byte] ^= 0x04;
    WriteRawFile(path, flipped);
    EXPECT_TRUE(ReadBlobFile(path, kTag).status().IsDataLoss())
        << "bit flip at byte " << byte;
  }
  // Trailing garbage past the declared payload.
  WriteRawFile(path, clean + "garbage");
  EXPECT_TRUE(ReadBlobFile(path, kTag).status().IsDataLoss());

  WriteRawFile(path, clean);
  EXPECT_TRUE(ReadBlobFile(path, kTag).ok());
  ASSERT_TRUE(RemovePath(path).ok());
}

#if FAIRREC_FAILPOINTS_ENABLED

TEST(BlobFileTest, InjectedCrashesLeaveOldFileOrNothing) {
  const std::string path = TestPath("atomic.frb");
  ASSERT_TRUE(RemovePath(path).ok());
  failpoint::Reset();

  for (const std::string_view site :
       {kFailpointBlobWriteBegin, kFailpointBlobWriteTorn,
        kFailpointBlobWriteBeforeRename}) {
    // Crash with no prior version: the target must not appear.
    failpoint::Arm(site);
    auto status = WriteBlobFileAtomic(path, kTag, "first");
    EXPECT_TRUE(failpoint::IsInjectedCrash(status)) << site;
    EXPECT_FALSE(PathExists(path)) << site;
  }
  ASSERT_TRUE(WriteBlobFileAtomic(path, kTag, "first").ok());
  for (const std::string_view site :
       {kFailpointBlobWriteBegin, kFailpointBlobWriteTorn,
        kFailpointBlobWriteBeforeRename}) {
    // Crash over an existing version: the old bytes must survive intact.
    failpoint::Arm(site);
    auto status = WriteBlobFileAtomic(path, kTag, "second");
    EXPECT_TRUE(failpoint::IsInjectedCrash(status)) << site;
    auto read = ReadBlobFile(path, kTag);
    ASSERT_TRUE(read.ok()) << site << ": " << read.status().ToString();
    EXPECT_EQ(*read, "first") << site;
  }
  failpoint::Reset();
  ASSERT_TRUE(RemovePath(path).ok());
}

TEST(BlobFileTest, InjectedBitFlipIsCaughtOnRead) {
  const std::string path = TestPath("bitflip.frb");
  failpoint::Reset();
  failpoint::Arm(kFailpointBlobWriteBitFlip);
  // Silent media corruption: the write itself reports success...
  ASSERT_TRUE(WriteBlobFileAtomic(path, kTag, "payload bytes").ok());
  // ...and only the checksum chain can catch it.
  EXPECT_TRUE(ReadBlobFile(path, kTag).status().IsDataLoss());
  failpoint::Reset();
  ASSERT_TRUE(RemovePath(path).ok());
}

#endif  // FAIRREC_FAILPOINTS_ENABLED

}  // namespace
}  // namespace fairrec
