#include "common/random.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace fairrec {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 15);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  // Must not get stuck at zero.
  EXPECT_NE(rng.NextUint64() | rng.NextUint64(), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBoundsInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t x = rng.UniformInt(3, 7);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 7);
    saw_lo |= x == 3;
    saw_hi |= x == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[static_cast<size_t>(rng.UniformInt(0, 9))]++;
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);  // within 10% relative
  }
}

TEST(RngTest, GaussianMomentsAreSane) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(17);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(23);
  const std::vector<int32_t> sample = rng.SampleWithoutReplacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<int32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const int32_t x : sample) {
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 100);
  }
}

TEST(RngTest, SampleWithoutReplacementFullPopulation) {
  Rng rng(29);
  std::vector<int32_t> sample = rng.SampleWithoutReplacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<int32_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, SampleWithoutReplacementZero) {
  Rng rng(31);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(37);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[rng.WeightedIndex(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

}  // namespace
}  // namespace fairrec
