#include "common/result.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fairrec {
namespace {

TEST(ResultTest, HoldsValue) {
  const Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  const Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, OkStatusIsRejected) {
  const Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r(std::vector<int>{1, 2});
  r.value().push_back(3);
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  const Result<int> r(Status::IOError("disk gone"));
  EXPECT_DEATH((void)r.value(), "disk gone");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  FAIRREC_ASSIGN_OR_RETURN(const int half, Half(x));
  return Half(half);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  const Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
}

TEST(ResultTest, AssignOrReturnPropagatesFirstError) {
  EXPECT_TRUE(Quarter(7).status().IsInvalidArgument());   // first Half fails
  EXPECT_TRUE(Quarter(10).status().IsInvalidArgument());  // second Half fails
}

TEST(ResultTest, CopyableWhenValueIs) {
  const Result<std::string> a(std::string("x"));
  const Result<std::string> b = a;
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(b.value(), "x");
}

}  // namespace
}  // namespace fairrec
