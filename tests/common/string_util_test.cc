#include "common/string_util.h"

#include <gtest/gtest.h>

namespace fairrec {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, AdjacentDelimitersYieldEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
}

TEST(SplitTest, LeadingAndTrailingDelimiters) {
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(TrimTest, StripsWhitespaceBothEnds) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("nochange"), "nochange");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(ToLowerTest, Lowercases) {
  EXPECT_EQ(ToLower("HeLLo 123"), "hello 123");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("fairness", "fair"));
  EXPECT_FALSE(StartsWith("fair", "fairness"));
  EXPECT_TRUE(EndsWith("fairness", "ness"));
  EXPECT_FALSE(EndsWith("ness", "fairness"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(FormatWithThousandsTest, GroupsDigits) {
  EXPECT_EQ(FormatWithThousands(0), "0");
  EXPECT_EQ(FormatWithThousands(999), "999");
  EXPECT_EQ(FormatWithThousands(1000), "1,000");
  EXPECT_EQ(FormatWithThousands(322371457), "322,371,457");
  EXPECT_EQ(FormatWithThousands(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace fairrec
