#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace fairrec {
namespace {

TEST(Crc32cTest, MatchesReferenceVectors) {
  // RFC 3720 / iSCSI known-answer vectors — the values any conforming
  // CRC-32C produces, so artifacts verify across implementations.
  EXPECT_EQ(Crc32c("", 0), 0u);
  const std::string check = "123456789";
  EXPECT_EQ(Crc32c(check.data(), check.size()), 0xe3069283u);
  const std::vector<uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
  const std::vector<uint8_t> ones(32, 0xff);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62a8ab43u);
  std::vector<uint8_t> ascending(32);
  for (size_t i = 0; i < ascending.size(); ++i) {
    ascending[i] = static_cast<uint8_t>(i);
  }
  EXPECT_EQ(Crc32c(ascending.data(), ascending.size()), 0x46dd794eu);
}

TEST(Crc32cTest, ExtendEqualsOneShot) {
  const std::string bytes = "the quick brown fox jumps over the lazy dog";
  const uint32_t one_shot = Crc32c(bytes.data(), bytes.size());
  // Any split point must continue to the same value.
  for (size_t split = 0; split <= bytes.size(); ++split) {
    const uint32_t head = ExtendCrc32c(0, bytes.data(), split);
    const uint32_t full =
        ExtendCrc32c(head, bytes.data() + split, bytes.size() - split);
    EXPECT_EQ(full, one_shot) << "split " << split;
  }
}

TEST(Crc32cTest, EveryBitFlipChangesTheChecksum) {
  const std::string bytes = "durability layer probe";
  const uint32_t clean = Crc32c(bytes.data(), bytes.size());
  std::string mutated = bytes;
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      mutated[byte] = static_cast<char>(bytes[byte] ^ (1 << bit));
      EXPECT_NE(Crc32c(mutated.data(), mutated.size()), clean)
          << "byte " << byte << " bit " << bit;
      mutated[byte] = bytes[byte];
    }
  }
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  for (const uint32_t crc : {0u, 1u, 0xe3069283u, 0xffffffffu, 0xdeadbeefu}) {
    EXPECT_EQ(UnmaskCrc32c(MaskCrc32c(crc)), crc);
    EXPECT_NE(MaskCrc32c(crc), crc);
  }
}

}  // namespace
}  // namespace fairrec
