#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace fairrec {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(1);
  pool.WaitIdle();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroCount) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(1, [&calls](size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, ParallelForMoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(10000, [&sum](size_t i) {
    sum.fetch_add(static_cast<int64_t>(i));
  });
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
}

TEST(ThreadPoolTest, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
    pool.WaitIdle();
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SequentialParallelForCalls) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.ParallelFor(20, [&total](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 100);
}

}  // namespace
}  // namespace fairrec
