// RetryPolicy schedule tests: the backoff sequence is hand-computed, the
// jitter is bounded and seed-deterministic, and the FakeClock is a real
// virtual-time seam (sleeps advance, never block).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/retry.h"

namespace fairrec {
namespace {

TEST(RetryPolicyTest, HandComputedScheduleWithCap) {
  RetryPolicy policy;
  policy.initial_backoff_millis = 100;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_millis = 1000;
  // 100, 200, 400, 800, then the cap holds: 1000, 1000, ...
  const std::vector<int64_t> expected = {100, 200, 400, 800, 1000, 1000, 1000};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(BackoffMillis(policy, static_cast<int32_t>(i) + 1), expected[i])
        << "failure " << i + 1;
  }
}

TEST(RetryPolicyTest, MultiplierOneIsConstantBackoff) {
  RetryPolicy policy;
  policy.initial_backoff_millis = 250;
  policy.backoff_multiplier = 1.0;
  policy.max_backoff_millis = 10'000;
  for (const int32_t failures : {1, 2, 5, 50}) {
    EXPECT_EQ(BackoffMillis(policy, failures), 250);
  }
}

TEST(RetryPolicyTest, FractionalMultiplierSchedule) {
  RetryPolicy policy;
  policy.initial_backoff_millis = 100;
  policy.backoff_multiplier = 1.5;
  policy.max_backoff_millis = 400;
  // 100, 150, 225, 337 (llround of 337.5 banker-free: 338), capped at 400.
  EXPECT_EQ(BackoffMillis(policy, 1), 100);
  EXPECT_EQ(BackoffMillis(policy, 2), 150);
  EXPECT_EQ(BackoffMillis(policy, 3), 225);
  EXPECT_EQ(BackoffMillis(policy, 4), 338);
  EXPECT_EQ(BackoffMillis(policy, 5), 400);
  EXPECT_EQ(BackoffMillis(policy, 6), 400);
}

TEST(RetryPolicyTest, HugeFailureCountSaturatesAtTheCapWithoutOverflow) {
  RetryPolicy policy;
  policy.initial_backoff_millis = 100;
  policy.backoff_multiplier = 10.0;
  policy.max_backoff_millis = 5000;
  EXPECT_EQ(BackoffMillis(policy, 1000), 5000);
}

TEST(RetryPolicyTest, JitterOffReturnsTheBaseAndStillConsumesTheStream) {
  RetryPolicy policy;
  policy.initial_backoff_millis = 100;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_millis = 1000;
  policy.jitter_fraction = 0.0;
  Rng rng(42);
  Rng parallel(42);
  (void)parallel.NextDouble();
  EXPECT_EQ(BackoffWithJitterMillis(policy, 1, rng), 100);
  // Exactly one draw was consumed: the two streams now agree.
  EXPECT_EQ(rng.NextDouble(), parallel.NextDouble());
}

TEST(RetryPolicyTest, JitterIsBoundedAndSeedDeterministic) {
  RetryPolicy policy;
  policy.initial_backoff_millis = 100;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_millis = 1000;
  policy.jitter_fraction = 0.25;
  Rng rng_a(7);
  Rng rng_b(7);
  for (int32_t failures = 1; failures <= 8; ++failures) {
    const int64_t base = BackoffMillis(policy, failures);
    const int64_t jittered = BackoffWithJitterMillis(policy, failures, rng_a);
    // |jittered - base| <= jitter_fraction * base (+1 for rounding).
    EXPECT_GE(jittered, base - base / 4 - 1) << "failure " << failures;
    EXPECT_LE(jittered, base + base / 4 + 1) << "failure " << failures;
    EXPECT_GE(jittered, 0);
    // Same seed, same schedule.
    EXPECT_EQ(jittered, BackoffWithJitterMillis(policy, failures, rng_b));
  }
}

TEST(FakeClockTest, SleepAdvancesVirtualTimeWithoutBlocking) {
  FakeClock clock;
  const int64_t start = clock.NowMillis();
  clock.SleepMillis(10'000'000);  // ~2.8 real hours if this actually slept
  EXPECT_EQ(clock.NowMillis(), start + 10'000'000);
}

TEST(FakeClockTest, AdvanceIsVisibleAcrossThreads) {
  FakeClock clock;
  std::atomic<bool> observed{false};
  std::thread watcher([&] {
    while (clock.NowMillis() < 500) std::this_thread::yield();
    observed.store(true);
  });
  clock.AdvanceMillis(600);
  watcher.join();
  EXPECT_TRUE(observed.load());
  EXPECT_EQ(clock.NowMillis(), 600);
}

TEST(RealClockTest, MonotoneAndActuallySleeps) {
  Clock* clock = Clock::Real();
  const int64_t before = clock->NowMillis();
  clock->SleepMillis(5);
  const int64_t after = clock->NowMillis();
  EXPECT_GE(after - before, 5);
}

}  // namespace
}  // namespace fairrec
