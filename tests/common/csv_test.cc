#include "common/csv.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace fairrec {
namespace {

TEST(CsvParseTest, SimpleRows) {
  const auto rows = ParseCsv("a,b\nc,d\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (CsvRow{"a", "b"}));
  EXPECT_EQ((*rows)[1], (CsvRow{"c", "d"}));
}

TEST(CsvParseTest, MissingTrailingNewline) {
  const auto rows = ParseCsv("a,b");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], (CsvRow{"a", "b"}));
}

TEST(CsvParseTest, QuotedFieldWithCommaAndNewline) {
  const auto rows = ParseCsv("\"a,b\",\"line1\nline2\"\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], (CsvRow{"a,b", "line1\nline2"}));
}

TEST(CsvParseTest, EscapedQuote) {
  const auto rows = ParseCsv("\"she said \"\"hi\"\"\"\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0], "she said \"hi\"");
}

TEST(CsvParseTest, CrlfLineEndings) {
  const auto rows = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1], (CsvRow{"c", "d"}));
}

TEST(CsvParseTest, EmptyFields) {
  const auto rows = ParseCsv(",\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0], (CsvRow{"", ""}));
}

TEST(CsvParseTest, EmptyInput) {
  const auto rows = ParseCsv("");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(CsvParseTest, UnterminatedQuoteIsError) {
  EXPECT_TRUE(ParseCsv("\"oops\n").status().IsInvalidArgument());
}

TEST(CsvWriteTest, QuotesOnlyWhenNeeded) {
  const std::string text =
      WriteCsvString({{"plain", "with,comma"}, {"with\"quote", "with\nnewline"}});
  EXPECT_EQ(text,
            "plain,\"with,comma\"\n\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(CsvRoundTripTest, ParseOfWriteIsIdentity) {
  const std::vector<CsvRow> rows{
      {"a", "b,c", "d\"e"}, {"", "multi\nline", "plain"}, {"1", "2", "3"}};
  const auto parsed = ParseCsv(WriteCsvString(rows));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, rows);
}

TEST(CsvFileTest, WriteThenReadBack) {
  const std::string path = testing::TempDir() + "/fairrec_csv_test.csv";
  const std::vector<CsvRow> rows{{"user", "item"}, {"1", "2"}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  const auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, rows);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadCsvFile("/nonexistent/dir/file.csv").status().IsIOError());
}

}  // namespace
}  // namespace fairrec
