#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace fairrec {
namespace {

TEST(FailpointTest, InjectedCrashIsRecognizable) {
  const Status crash = failpoint::InjectedCrash("some.site");
  EXPECT_FALSE(crash.ok());
  EXPECT_TRUE(failpoint::IsInjectedCrash(crash));
  EXPECT_FALSE(failpoint::IsInjectedCrash(Status::OK()));
  EXPECT_FALSE(failpoint::IsInjectedCrash(Status::Internal("unrelated")));
}

#if FAIRREC_FAILPOINTS_ENABLED

class FailpointRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::Reset(); }
  void TearDown() override { failpoint::Reset(); }
};

TEST_F(FailpointRegistryTest, UnarmedSiteNeverFiresButCounts) {
  EXPECT_FALSE(failpoint::Triggered("fp.test.a"));
  EXPECT_FALSE(failpoint::Triggered("fp.test.a"));
  EXPECT_EQ(failpoint::HitCount("fp.test.a"), 2);
  EXPECT_EQ(failpoint::HitCount("fp.test.never_hit"), 0);
}

TEST_F(FailpointRegistryTest, ArmFiresExactlyOnce) {
  failpoint::Arm("fp.test.a");
  EXPECT_TRUE(failpoint::Triggered("fp.test.a"));
  // Firing disarms: the site goes back to counting silently.
  EXPECT_FALSE(failpoint::Triggered("fp.test.a"));
  EXPECT_EQ(failpoint::HitCount("fp.test.a"), 2);
}

TEST_F(FailpointRegistryTest, SkipCountDelaysTheFiring) {
  failpoint::Arm("fp.test.a", /*skip=*/2);
  EXPECT_FALSE(failpoint::Triggered("fp.test.a"));
  EXPECT_FALSE(failpoint::Triggered("fp.test.a"));
  EXPECT_TRUE(failpoint::Triggered("fp.test.a"));
  EXPECT_FALSE(failpoint::Triggered("fp.test.a"));
}

TEST_F(FailpointRegistryTest, DisarmCancelsWithoutClearingCounts) {
  failpoint::Arm("fp.test.a");
  failpoint::Disarm("fp.test.a");
  EXPECT_FALSE(failpoint::Triggered("fp.test.a"));
  EXPECT_EQ(failpoint::HitCount("fp.test.a"), 1);
}

TEST_F(FailpointRegistryTest, RearmingReplacesThePreviousArming) {
  failpoint::Arm("fp.test.a", /*skip=*/5);
  failpoint::Arm("fp.test.a", /*skip=*/0);
  EXPECT_TRUE(failpoint::Triggered("fp.test.a"));
}

TEST_F(FailpointRegistryTest, HitSitesEnumeratesEverySiteTouched) {
  failpoint::Triggered("fp.test.b");
  failpoint::Triggered("fp.test.a");
  failpoint::Triggered("fp.test.a");
  const std::vector<std::string> sites = failpoint::HitSites();
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
  EXPECT_EQ(sites[0], "fp.test.a");
  EXPECT_EQ(sites[1], "fp.test.b");

  failpoint::Reset();
  EXPECT_TRUE(failpoint::HitSites().empty());
  EXPECT_EQ(failpoint::HitCount("fp.test.a"), 0);
}

#else  // !FAIRREC_FAILPOINTS_ENABLED

TEST(FailpointTest, ReleaseStubsAreInertNoOps) {
  failpoint::Arm("fp.test.a");
  EXPECT_FALSE(failpoint::Triggered("fp.test.a"));
  EXPECT_EQ(failpoint::HitCount("fp.test.a"), 0);
  EXPECT_TRUE(failpoint::HitSites().empty());
}

#endif  // FAIRREC_FAILPOINTS_ENABLED

}  // namespace
}  // namespace fairrec
