#include "ratings/rating_matrix.h"

#include <gtest/gtest.h>

namespace fairrec {
namespace {

RatingMatrix SmallMatrix() {
  // Users 0..2, items 0..3:
  //        i0   i1   i2   i3
  //  u0     5    3    -    1
  //  u1     4    -    2    -
  //  u2     -    -    -    5
  RatingMatrixBuilder builder;
  EXPECT_TRUE(builder.Add(0, 0, 5).ok());
  EXPECT_TRUE(builder.Add(0, 1, 3).ok());
  EXPECT_TRUE(builder.Add(0, 3, 1).ok());
  EXPECT_TRUE(builder.Add(1, 0, 4).ok());
  EXPECT_TRUE(builder.Add(1, 2, 2).ok());
  EXPECT_TRUE(builder.Add(2, 3, 5).ok());
  return std::move(builder.Build()).ValueOrDie();
}

TEST(RatingMatrixTest, Dimensions) {
  const RatingMatrix m = SmallMatrix();
  EXPECT_EQ(m.num_users(), 3);
  EXPECT_EQ(m.num_items(), 4);
  EXPECT_EQ(m.num_ratings(), 6);
  EXPECT_DOUBLE_EQ(m.Density(), 6.0 / 12.0);
}

TEST(RatingMatrixTest, RowsAreSortedByItem) {
  const RatingMatrix m = SmallMatrix();
  const auto row = m.ItemsRatedBy(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], (ItemRating{0, 5}));
  EXPECT_EQ(row[1], (ItemRating{1, 3}));
  EXPECT_EQ(row[2], (ItemRating{3, 1}));
}

TEST(RatingMatrixTest, ColumnsAreSortedByUser) {
  const RatingMatrix m = SmallMatrix();
  const auto col = m.UsersWhoRated(0);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_EQ(col[0], (UserRating{0, 5}));
  EXPECT_EQ(col[1], (UserRating{1, 4}));
  EXPECT_TRUE(m.UsersWhoRated(1).size() == 1 &&
              m.UsersWhoRated(1)[0].user == 0);
}

TEST(RatingMatrixTest, GetRating) {
  const RatingMatrix m = SmallMatrix();
  EXPECT_EQ(m.GetRating(0, 0), 5.0);
  EXPECT_EQ(m.GetRating(1, 2), 2.0);
  EXPECT_FALSE(m.GetRating(0, 2).has_value());
  EXPECT_FALSE(m.GetRating(2, 0).has_value());
  EXPECT_FALSE(m.GetRating(-1, 0).has_value());
  EXPECT_FALSE(m.GetRating(0, 99).has_value());
}

TEST(RatingMatrixTest, UserMeans) {
  const RatingMatrix m = SmallMatrix();
  EXPECT_DOUBLE_EQ(m.UserMean(0), 3.0);  // (5+3+1)/3
  EXPECT_DOUBLE_EQ(m.UserMean(1), 3.0);  // (4+2)/2
  EXPECT_DOUBLE_EQ(m.UserMean(2), 5.0);
}

TEST(RatingMatrixTest, Degrees) {
  const RatingMatrix m = SmallMatrix();
  EXPECT_EQ(m.UserDegree(0), 3);
  EXPECT_EQ(m.UserDegree(2), 1);
  EXPECT_EQ(m.ItemDegree(0), 2);
  EXPECT_EQ(m.ItemDegree(1), 1);
  EXPECT_EQ(m.ItemDegree(2), 1);
}

TEST(RatingMatrixTest, ItemsUnratedByAll) {
  const RatingMatrix m = SmallMatrix();
  // Group {0, 1} rated items 0,1,2,3 minus... u0 rated {0,1,3}, u1 {0,2}.
  EXPECT_TRUE(m.ItemsUnratedByAll({0, 1}).empty());
  EXPECT_EQ(m.ItemsUnratedByAll({2}), (std::vector<ItemId>{0, 1, 2}));
  EXPECT_EQ(m.ItemsUnratedByAll({0}), (std::vector<ItemId>{2}));
}

TEST(RatingMatrixTest, ItemsUnratedBySingle) {
  const RatingMatrix m = SmallMatrix();
  EXPECT_EQ(m.ItemsUnratedBy(1), (std::vector<ItemId>{1, 3}));
}

TEST(RatingMatrixTest, ToTriplesRoundTrip) {
  const RatingMatrix m = SmallMatrix();
  const std::vector<RatingTriple> triples = m.ToTriples();
  RatingMatrixBuilder builder;
  ASSERT_TRUE(builder.AddAll(triples).ok());
  const auto rebuilt = builder.Build();
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->ToTriples(), triples);
}

TEST(RatingMatrixBuilderTest, RejectsNegativeIds) {
  RatingMatrixBuilder builder;
  EXPECT_TRUE(builder.Add(-1, 0, 3).IsInvalidArgument());
  EXPECT_TRUE(builder.Add(0, -5, 3).IsInvalidArgument());
}

TEST(RatingMatrixBuilderTest, RejectsOffScaleRatings) {
  RatingMatrixBuilder builder;
  EXPECT_TRUE(builder.Add(0, 0, 0.5).IsInvalidArgument());
  EXPECT_TRUE(builder.Add(0, 0, 5.5).IsInvalidArgument());
  EXPECT_TRUE(builder.Add(0, 0, 1.0).ok());
  EXPECT_TRUE(builder.Add(0, 1, 5.0).ok());
}

TEST(RatingMatrixBuilderTest, AllowAnyScaleOverridesValidation) {
  RatingMatrixBuilder builder;
  builder.allow_any_scale(true);
  EXPECT_TRUE(builder.Add(0, 0, -2.5).ok());
  const auto m = builder.Build();
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->GetRating(0, 0), -2.5);
}

TEST(RatingMatrixBuilderTest, DuplicateCellRejectedAtBuild) {
  RatingMatrixBuilder builder;
  ASSERT_TRUE(builder.Add(1, 2, 3).ok());
  ASSERT_TRUE(builder.Add(1, 2, 4).ok());
  EXPECT_TRUE(builder.Build().status().IsAlreadyExists());
}

TEST(RatingMatrixBuilderTest, ReserveGrowsGrid) {
  RatingMatrixBuilder builder;
  builder.Reserve(10, 20);
  ASSERT_TRUE(builder.Add(0, 0, 3).ok());
  const auto m = builder.Build();
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_users(), 10);
  EXPECT_EQ(m->num_items(), 20);
}

TEST(RatingMatrixBuilderTest, EmptyBuild) {
  RatingMatrixBuilder builder;
  const auto m = builder.Build();
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_users(), 0);
  EXPECT_EQ(m->num_items(), 0);
  EXPECT_EQ(m->num_ratings(), 0);
  EXPECT_DOUBLE_EQ(m->Density(), 0.0);
}

TEST(RatingMatrixTest, UserWithNoRatingsHasZeroMean) {
  RatingMatrixBuilder builder;
  builder.Reserve(3, 1);
  ASSERT_TRUE(builder.Add(0, 0, 4).ok());
  const auto m = builder.Build();
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->UserMean(1), 0.0);
  EXPECT_EQ(m->UserDegree(1), 0);
  EXPECT_TRUE(m->ItemsRatedBy(2).empty());
}

}  // namespace
}  // namespace fairrec
