#include "ratings/delta_journal.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "common/blob_io.h"
#include "common/failpoint.h"

namespace fairrec {
namespace {

std::string TestPath(const std::string& name) {
  return testing::TempDir() + "/fairrec_journal_" + name;
}

std::string ReadRawFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteRawFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

RatingDelta MakeDelta(int shift) {
  RatingDelta delta;
  EXPECT_TRUE(delta.Add(shift, shift + 1, 1 + shift % 5).ok());
  EXPECT_TRUE(delta.Add(shift + 2, shift, 5 - shift % 5).ok());
  return delta;
}

void ExpectSameBatch(const RatingDelta& got, const RatingDelta& want) {
  const auto got_upserts = got.upserts();
  const auto want_upserts = want.upserts();
  ASSERT_EQ(got_upserts.size(), want_upserts.size());
  for (size_t i = 0; i < want_upserts.size(); ++i) {
    EXPECT_EQ(got_upserts[i], want_upserts[i]) << "triple " << i;
  }
  EXPECT_EQ(got.allows_any_scale(), want.allows_any_scale());
}

DeltaJournal OpenOrDie(const std::string& path) {
  auto journal = DeltaJournal::Open(path);
  EXPECT_TRUE(journal.ok()) << journal.status().ToString();
  return std::move(journal).ValueOrDie();
}

TEST(DeltaJournalTest, AppendReplayRoundTrip) {
  const std::string path = TestPath("roundtrip.frj");
  ASSERT_TRUE(RemovePath(path).ok());
  DeltaJournal journal = OpenOrDie(path);
  EXPECT_EQ(journal.last_seq(), 0u);
  EXPECT_EQ(journal.size_bytes(), 0u);

  const std::vector<RatingDelta> batches = {MakeDelta(0), MakeDelta(1),
                                            MakeDelta(2)};
  for (size_t i = 0; i < batches.size(); ++i) {
    ASSERT_TRUE(journal.Append(i + 1, batches[i]).ok());
  }
  EXPECT_EQ(journal.last_seq(), 3u);

  const auto replay = journal.Replay();
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->torn_tail_bytes, 0u);
  EXPECT_EQ(replay->valid_bytes, journal.size_bytes());
  ASSERT_EQ(replay->records.size(), 3u);
  for (size_t i = 0; i < batches.size(); ++i) {
    EXPECT_EQ(replay->records[i].seq, i + 1);
    ExpectSameBatch(replay->records[i].delta, batches[i]);
  }
  ASSERT_TRUE(RemovePath(path).ok());
}

TEST(DeltaJournalTest, ReopenContinuesAfterTheHighestSeq) {
  const std::string path = TestPath("reopen.frj");
  ASSERT_TRUE(RemovePath(path).ok());
  {
    DeltaJournal journal = OpenOrDie(path);
    ASSERT_TRUE(journal.Append(7, MakeDelta(0)).ok());
  }
  DeltaJournal journal = OpenOrDie(path);
  EXPECT_EQ(journal.last_seq(), 7u);
  EXPECT_EQ(journal.recovered_torn_bytes(), 0u);
  // The floor persists: seqs at or below the recovered maximum are refused.
  EXPECT_TRUE(journal.Append(7, MakeDelta(1)).IsInvalidArgument());
  EXPECT_TRUE(journal.Append(8, MakeDelta(1)).ok());
  ASSERT_TRUE(RemovePath(path).ok());
}

TEST(DeltaJournalTest, NonIncreasingSeqIsRefused) {
  const std::string path = TestPath("seq.frj");
  ASSERT_TRUE(RemovePath(path).ok());
  DeltaJournal journal = OpenOrDie(path);
  ASSERT_TRUE(journal.Append(5, MakeDelta(0)).ok());
  EXPECT_TRUE(journal.Append(5, MakeDelta(1)).IsInvalidArgument());
  EXPECT_TRUE(journal.Append(4, MakeDelta(1)).IsInvalidArgument());
  ASSERT_TRUE(RemovePath(path).ok());
}

TEST(DeltaJournalTest, TornTailIsTruncatedOnOpen) {
  const std::string path = TestPath("torn.frj");
  ASSERT_TRUE(RemovePath(path).ok());
  uint64_t full_bytes = 0;
  uint64_t first_record_bytes = 0;
  {
    DeltaJournal journal = OpenOrDie(path);
    ASSERT_TRUE(journal.Append(1, MakeDelta(0)).ok());
    first_record_bytes = journal.size_bytes();
    ASSERT_TRUE(journal.Append(2, MakeDelta(1)).ok());
    full_bytes = journal.size_bytes();
  }
  const std::string clean = ReadRawFile(path);
  ASSERT_EQ(clean.size(), full_bytes);

  // Every possible crash point inside the second record: the first record
  // survives, the torn tail is truncated, and the journal stays usable.
  for (uint64_t len = first_record_bytes; len < full_bytes; ++len) {
    WriteRawFile(path, clean.substr(0, len));
    DeltaJournal journal = OpenOrDie(path);
    EXPECT_EQ(journal.recovered_torn_bytes(), len - first_record_bytes)
        << "len " << len;
    EXPECT_EQ(journal.size_bytes(), first_record_bytes);
    EXPECT_EQ(journal.last_seq(), 1u);
    const auto replay = journal.Replay();
    ASSERT_TRUE(replay.ok());
    ASSERT_EQ(replay->records.size(), 1u);
    EXPECT_EQ(replay->records[0].seq, 1u);
  }
  ASSERT_TRUE(RemovePath(path).ok());
}

TEST(DeltaJournalTest, CorruptionInACompleteRecordIsDataLossNotATornTail) {
  const std::string path = TestPath("corrupt.frj");
  ASSERT_TRUE(RemovePath(path).ok());
  {
    DeltaJournal journal = OpenOrDie(path);
    ASSERT_TRUE(journal.Append(1, MakeDelta(0)).ok());
    ASSERT_TRUE(journal.Append(2, MakeDelta(1)).ok());
  }
  const std::string clean = ReadRawFile(path);

  // A bit flip in any byte of the *complete* stream must be corruption
  // (DataLoss), never silently treated as a torn tail — in particular a
  // flip in a length field, which the header CRC pins down.
  for (size_t byte = 0; byte < clean.size(); ++byte) {
    std::string flipped = clean;
    flipped[byte] ^= 0x20;
    const auto parsed = DeltaJournal::ParseBytes(flipped);
    EXPECT_TRUE(parsed.status().IsDataLoss()) << "byte " << byte;
    // And through the filesystem path, Open refuses the file.
    WriteRawFile(path, flipped);
    EXPECT_TRUE(DeltaJournal::Open(path).status().IsDataLoss())
        << "byte " << byte;
  }
  ASSERT_TRUE(RemovePath(path).ok());
}

TEST(DeltaJournalTest, RollbackRemovesTheLastAppend) {
  const std::string path = TestPath("rollback.frj");
  ASSERT_TRUE(RemovePath(path).ok());
  DeltaJournal journal = OpenOrDie(path);
  ASSERT_TRUE(journal.Append(1, MakeDelta(0)).ok());
  const uint64_t one_record = journal.size_bytes();
  ASSERT_TRUE(journal.Append(2, MakeDelta(1)).ok());
  ASSERT_TRUE(journal.RollbackLastAppend().ok());
  EXPECT_EQ(journal.size_bytes(), one_record);
  EXPECT_EQ(journal.last_seq(), 1u);
  // Seq 2 is free again.
  ASSERT_TRUE(journal.Append(2, MakeDelta(2)).ok());
  const auto replay = journal.Replay();
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 2u);
  ExpectSameBatch(replay->records[1].delta, MakeDelta(2));
  ASSERT_TRUE(RemovePath(path).ok());
}

TEST(DeltaJournalTest, ClearEmptiesAndResetsTheSeqFloor) {
  const std::string path = TestPath("clear.frj");
  ASSERT_TRUE(RemovePath(path).ok());
  DeltaJournal journal = OpenOrDie(path);
  ASSERT_TRUE(journal.Append(1, MakeDelta(0)).ok());
  ASSERT_TRUE(journal.Append(2, MakeDelta(1)).ok());
  ASSERT_TRUE(journal.Clear().ok());
  EXPECT_EQ(journal.size_bytes(), 0u);
  EXPECT_EQ(journal.last_seq(), 0u);
  const auto replay = journal.Replay();
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->records.empty());
  // The facade appends at applied_seq + 1 after a checkpoint; the journal
  // itself only requires monotonicity within the current file.
  ASSERT_TRUE(journal.Append(3, MakeDelta(2)).ok());
  ASSERT_TRUE(RemovePath(path).ok());
}

TEST(DeltaJournalTest, EmptyAndAbsentFilesOpenClean) {
  const std::string path = TestPath("fresh.frj");
  ASSERT_TRUE(RemovePath(path).ok());
  {
    DeltaJournal journal = OpenOrDie(path);  // created on first open
    EXPECT_EQ(journal.size_bytes(), 0u);
    EXPECT_EQ(journal.last_seq(), 0u);
  }
  {
    DeltaJournal journal = OpenOrDie(path);  // reopened while empty
    EXPECT_EQ(journal.last_seq(), 0u);
  }
  ASSERT_TRUE(RemovePath(path).ok());
}

#if FAIRREC_FAILPOINTS_ENABLED

TEST(DeltaJournalTest, InjectedTornAppendRecoversOnReopen) {
  const std::string path = TestPath("failpoint_torn.frj");
  ASSERT_TRUE(RemovePath(path).ok());
  failpoint::Reset();
  uint64_t one_record = 0;
  {
    DeltaJournal journal = OpenOrDie(path);
    ASSERT_TRUE(journal.Append(1, MakeDelta(0)).ok());
    one_record = journal.size_bytes();
    failpoint::Arm(kFailpointJournalAppendTorn);
    const Status crashed = journal.Append(2, MakeDelta(1));
    EXPECT_TRUE(failpoint::IsInjectedCrash(crashed));
    // The in-memory object is now abandoned, as after a real kill.
  }
  DeltaJournal journal = OpenOrDie(path);
  EXPECT_GT(journal.recovered_torn_bytes(), 0u);
  EXPECT_EQ(journal.size_bytes(), one_record);
  EXPECT_EQ(journal.last_seq(), 1u);
  ASSERT_TRUE(journal.Append(2, MakeDelta(1)).ok());
  failpoint::Reset();
  ASSERT_TRUE(RemovePath(path).ok());
}

TEST(DeltaJournalTest, InjectedCrashBeforeFsyncLeavesACompleteRecord) {
  const std::string path = TestPath("failpoint_fsync.frj");
  ASSERT_TRUE(RemovePath(path).ok());
  failpoint::Reset();
  {
    DeltaJournal journal = OpenOrDie(path);
    failpoint::Arm(kFailpointJournalAppendBeforeFsync);
    const Status crashed = journal.Append(1, MakeDelta(0));
    EXPECT_TRUE(failpoint::IsInjectedCrash(crashed));
  }
  // This site models the bytes having survived the crash; the record is
  // complete and replays. (The caller was never told the append succeeded,
  // so replaying it is the at-least-once half of the WAL contract, made
  // exactly-once by the facade's seq bookkeeping.)
  DeltaJournal journal = OpenOrDie(path);
  EXPECT_EQ(journal.last_seq(), 1u);
  EXPECT_EQ(journal.recovered_torn_bytes(), 0u);
  failpoint::Reset();
  ASSERT_TRUE(RemovePath(path).ok());
}

#endif  // FAIRREC_FAILPOINTS_ENABLED

}  // namespace
}  // namespace fairrec
