#include "ratings/rating_delta.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "ratings/rating_matrix.h"

namespace fairrec {
namespace {

RatingMatrix SmallMatrix() {
  // Users 0..2, items 0..3:
  //        i0   i1   i2   i3
  //  u0     5    3    -    1
  //  u1     4    -    2    -
  //  u2     -    -    -    5
  RatingMatrixBuilder builder;
  EXPECT_TRUE(builder.Add(0, 0, 5).ok());
  EXPECT_TRUE(builder.Add(0, 1, 3).ok());
  EXPECT_TRUE(builder.Add(0, 3, 1).ok());
  EXPECT_TRUE(builder.Add(1, 0, 4).ok());
  EXPECT_TRUE(builder.Add(1, 2, 2).ok());
  EXPECT_TRUE(builder.Add(2, 3, 5).ok());
  return std::move(builder.Build()).ValueOrDie();
}

/// The reference semantics: rebuild from scratch with the upserts folded in.
RatingMatrix RebuildWith(const RatingMatrix& base,
                         const std::vector<RatingTriple>& upserts) {
  RatingMatrixBuilder builder;
  builder.Reserve(base.num_users(), base.num_items());
  for (const RatingTriple& t : base.ToTriples()) {
    bool overridden = false;
    for (const RatingTriple& up : upserts) {
      if (up.user == t.user && up.item == t.item) overridden = true;
    }
    if (!overridden) EXPECT_TRUE(builder.Add(t.user, t.item, t.value).ok());
  }
  for (const RatingTriple& up : upserts) {
    EXPECT_TRUE(builder.Add(up.user, up.item, up.value).ok());
  }
  return std::move(builder.Build()).ValueOrDie();
}

void ExpectSameMatrix(const RatingMatrix& a, const RatingMatrix& b) {
  ASSERT_EQ(a.num_users(), b.num_users());
  ASSERT_EQ(a.num_items(), b.num_items());
  ASSERT_EQ(a.num_ratings(), b.num_ratings());
  for (UserId u = 0; u < a.num_users(); ++u) {
    const auto row_a = a.ItemsRatedBy(u);
    const auto row_b = b.ItemsRatedBy(u);
    ASSERT_EQ(row_a.size(), row_b.size()) << "user " << u;
    for (size_t k = 0; k < row_a.size(); ++k) {
      EXPECT_EQ(row_a[k], row_b[k]) << "user " << u << " entry " << k;
    }
    EXPECT_EQ(a.UserMean(u), b.UserMean(u)) << "user " << u;
  }
  for (ItemId i = 0; i < a.num_items(); ++i) {
    const auto col_a = a.UsersWhoRated(i);
    const auto col_b = b.UsersWhoRated(i);
    ASSERT_EQ(col_a.size(), col_b.size()) << "item " << i;
    for (size_t k = 0; k < col_a.size(); ++k) {
      EXPECT_EQ(col_a[k], col_b[k]) << "item " << i << " entry " << k;
    }
  }
}

TEST(RatingDeltaTest, RejectsInvalidInput) {
  RatingDelta delta;
  EXPECT_FALSE(delta.Add(-1, 0, 3).ok());
  EXPECT_FALSE(delta.Add(0, -2, 3).ok());
  EXPECT_FALSE(delta.Add(0, 0, 7).ok());
  EXPECT_TRUE(delta.empty());
  EXPECT_TRUE(delta.allow_any_scale(true).Add(0, 0, 7).ok());
}

TEST(RatingDeltaTest, LastUpsertOfACellWins) {
  RatingDelta delta;
  ASSERT_TRUE(delta.Add(1, 1, 2).ok());
  ASSERT_TRUE(delta.Add(0, 2, 4).ok());
  ASSERT_TRUE(delta.Add(1, 1, 5).ok());
  const auto upserts = delta.upserts();
  ASSERT_EQ(upserts.size(), 2u);
  EXPECT_EQ(upserts[0], (RatingTriple{0, 2, 4}));
  EXPECT_EQ(upserts[1], (RatingTriple{1, 1, 5}));
}

TEST(RatingDeltaTest, TouchedItemsAndUsers) {
  RatingDelta delta;
  ASSERT_TRUE(delta.Add(2, 3, 1).ok());
  ASSERT_TRUE(delta.Add(0, 1, 2).ok());
  ASSERT_TRUE(delta.Add(2, 1, 3).ok());
  EXPECT_EQ(delta.TouchedItems(), (std::vector<ItemId>{1, 3}));
  EXPECT_EQ(delta.TouchedUsers(), (std::vector<UserId>{0, 2}));
}

TEST(RatingDeltaTest, AppendsNewRatings) {
  const RatingMatrix base = SmallMatrix();
  RatingDelta delta;
  ASSERT_TRUE(delta.Add(1, 1, 3).ok());
  ASSERT_TRUE(delta.Add(2, 0, 2).ok());
  const RatingMatrix merged = std::move(delta.ApplyTo(base)).ValueOrDie();
  ExpectSameMatrix(merged, RebuildWith(base, {{1, 1, 3}, {2, 0, 2}}));
  EXPECT_EQ(merged.num_ratings(), 8);
}

TEST(RatingDeltaTest, OverwritesExistingCell) {
  const RatingMatrix base = SmallMatrix();
  RatingDelta delta;
  ASSERT_TRUE(delta.Add(0, 1, 5).ok());
  const RatingMatrix merged = std::move(delta.ApplyTo(base)).ValueOrDie();
  ExpectSameMatrix(merged, RebuildWith(base, {{0, 1, 5}}));
  EXPECT_EQ(merged.num_ratings(), base.num_ratings());
  EXPECT_EQ(merged.GetRating(0, 1), 5.0);
}

TEST(RatingDeltaTest, GrowsUsersAndItems) {
  const RatingMatrix base = SmallMatrix();
  RatingDelta delta;
  ASSERT_TRUE(delta.Add(5, 6, 4).ok());  // brand-new user, brand-new item
  const RatingMatrix merged = std::move(delta.ApplyTo(base)).ValueOrDie();
  EXPECT_EQ(merged.num_users(), 6);
  EXPECT_EQ(merged.num_items(), 7);
  ExpectSameMatrix(merged, RebuildWith(base, {{5, 6, 4}}));
  EXPECT_TRUE(merged.ItemsRatedBy(3).empty());  // gap user has no ratings
  EXPECT_DOUBLE_EQ(merged.UserMean(5), 4.0);
}

TEST(RatingDeltaTest, EmptyDeltaIsIdentity) {
  const RatingMatrix base = SmallMatrix();
  const RatingDelta delta;
  ExpectSameMatrix(std::move(delta.ApplyTo(base)).ValueOrDie(), base);
}

TEST(RatingDeltaTest, RandomizedMergeMatchesRebuild) {
  Rng rng(20260728);
  RatingMatrixBuilder builder;
  builder.Reserve(40, 25);
  for (UserId u = 0; u < 40; ++u) {
    for (ItemId i = 0; i < 25; ++i) {
      if (!rng.NextBool(0.15)) continue;
      ASSERT_TRUE(
          builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5))).ok());
    }
  }
  const RatingMatrix base = std::move(builder.Build()).ValueOrDie();

  for (int round = 0; round < 10; ++round) {
    RatingDelta delta;
    std::vector<RatingTriple> upserts;
    const int batch = static_cast<int>(rng.UniformInt(1, 30));
    for (int k = 0; k < batch; ++k) {
      const auto u = static_cast<UserId>(rng.UniformInt(0, 45));  // may grow
      const auto i = static_cast<ItemId>(rng.UniformInt(0, 28));
      const auto value = static_cast<Rating>(rng.UniformInt(1, 5));
      bool duplicate = false;
      for (const RatingTriple& prev : upserts) {
        if (prev.user == u && prev.item == i) duplicate = true;
      }
      if (duplicate) continue;
      upserts.push_back({u, i, value});
      ASSERT_TRUE(delta.Add(u, i, value).ok());
    }
    ExpectSameMatrix(std::move(delta.ApplyTo(base)).ValueOrDie(),
                     RebuildWith(base, upserts));
  }
}

}  // namespace
}  // namespace fairrec
