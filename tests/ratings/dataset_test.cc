#include "ratings/dataset.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/csv.h"

namespace fairrec {
namespace {

Dataset SmallDataset() {
  RatingMatrixBuilder builder;
  EXPECT_TRUE(builder.Add(0, 0, 5).ok());
  EXPECT_TRUE(builder.Add(0, 1, 3).ok());
  EXPECT_TRUE(builder.Add(1, 0, 4).ok());
  EXPECT_TRUE(builder.Add(1, 1, 2).ok());
  EXPECT_TRUE(builder.Add(2, 0, 1).ok());
  Dataset d;
  d.matrix = std::move(builder.Build()).ValueOrDie();
  return d;
}

TEST(DatasetStatsTest, ComputesAggregates) {
  const DatasetStats stats = SmallDataset().ComputeStats();
  EXPECT_EQ(stats.num_users, 3);
  EXPECT_EQ(stats.num_items, 2);
  EXPECT_EQ(stats.num_ratings, 5);
  EXPECT_DOUBLE_EQ(stats.density, 5.0 / 6.0);
  EXPECT_DOUBLE_EQ(stats.mean_rating, 3.0);
  EXPECT_EQ(stats.histogram[0], 1);  // one rating of 1
  EXPECT_EQ(stats.histogram[2], 1);  // one rating of 3
  EXPECT_EQ(stats.histogram[4], 1);  // one rating of 5
  EXPECT_EQ(stats.min_user_degree, 1);
  EXPECT_EQ(stats.max_user_degree, 2);
  EXPECT_NEAR(stats.mean_user_degree, 5.0 / 3.0, 1e-12);
}

TEST(DatasetStatsTest, EmptyDataset) {
  const Dataset d;
  const DatasetStats stats = d.ComputeStats();
  EXPECT_EQ(stats.num_ratings, 0);
  EXPECT_DOUBLE_EQ(stats.mean_rating, 0.0);
}

TEST(DatasetCsvTest, SaveLoadRoundTrip) {
  const std::string path = testing::TempDir() + "/fairrec_dataset_test.csv";
  const Dataset original = SmallDataset();
  ASSERT_TRUE(SaveDatasetCsv(original, path).ok());
  const auto loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->matrix.ToTriples(), original.matrix.ToTriples());
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, HeaderlessFileLoads) {
  const std::string path = testing::TempDir() + "/fairrec_noheader_test.csv";
  ASSERT_TRUE(WriteCsvFile(path, {{"0", "1", "4.0"}, {"1", "0", "2.0"}}).ok());
  const auto loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->matrix.num_ratings(), 2);
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, BadRowAfterDataIsError) {
  const std::string path = testing::TempDir() + "/fairrec_badrow_test.csv";
  ASSERT_TRUE(WriteCsvFile(path, {{"0", "1", "4.0"}, {"x", "y", "z"}}).ok());
  EXPECT_TRUE(LoadDatasetCsv(path).status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, WrongColumnCountIsError) {
  const std::string path = testing::TempDir() + "/fairrec_cols_test.csv";
  ASSERT_TRUE(WriteCsvFile(path, {{"0", "1"}}).ok());
  EXPECT_TRUE(LoadDatasetCsv(path).status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, OffScaleRatingIsError) {
  const std::string path = testing::TempDir() + "/fairrec_scale_test.csv";
  ASSERT_TRUE(WriteCsvFile(path, {{"0", "0", "9.0"}}).ok());
  EXPECT_TRUE(LoadDatasetCsv(path).status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, MissingFileIsIOError) {
  EXPECT_TRUE(LoadDatasetCsv("/no/such/file.csv").status().IsIOError());
}

}  // namespace
}  // namespace fairrec
