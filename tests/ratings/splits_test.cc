#include "ratings/splits.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"

namespace fairrec {
namespace {

RatingMatrix DenseMatrix(int32_t users, int32_t items, uint64_t seed) {
  Rng rng(seed);
  RatingMatrixBuilder builder;
  for (UserId u = 0; u < users; ++u) {
    for (ItemId i = 0; i < items; ++i) {
      EXPECT_TRUE(
          builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5))).ok());
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

std::set<std::pair<UserId, ItemId>> Cells(const std::vector<RatingTriple>& v) {
  std::set<std::pair<UserId, ItemId>> out;
  for (const RatingTriple& t : v) out.emplace(t.user, t.item);
  return out;
}

TEST(RandomHoldoutSplitTest, ValidatesArguments) {
  const RatingMatrix m = DenseMatrix(4, 4, 1);
  EXPECT_TRUE(RandomHoldoutSplit(m, 0.0, 1).status().IsInvalidArgument());
  EXPECT_TRUE(RandomHoldoutSplit(m, 1.0, 1).status().IsInvalidArgument());
  const RatingMatrix empty = std::move(RatingMatrixBuilder().Build()).ValueOrDie();
  EXPECT_TRUE(RandomHoldoutSplit(empty, 0.2, 1).status().IsInvalidArgument());
}

TEST(RandomHoldoutSplitTest, PartitionIsExactAndDisjoint) {
  const RatingMatrix m = DenseMatrix(10, 20, 2);
  const TrainTestSplit split =
      std::move(RandomHoldoutSplit(m, 0.25, 7)).ValueOrDie();
  EXPECT_EQ(split.train.num_ratings() +
                static_cast<int64_t>(split.test.size()),
            m.num_ratings());
  const auto train_cells = Cells(split.train.ToTriples());
  const auto test_cells = Cells(split.test);
  for (const auto& cell : test_cells) {
    EXPECT_FALSE(train_cells.contains(cell));
  }
  // Held-out fraction near the requested 25%.
  EXPECT_NEAR(static_cast<double>(split.test.size()) /
                  static_cast<double>(m.num_ratings()),
              0.25, 0.08);
}

TEST(RandomHoldoutSplitTest, PreservesGridDimensions) {
  const RatingMatrix m = DenseMatrix(6, 9, 3);
  const TrainTestSplit split =
      std::move(RandomHoldoutSplit(m, 0.5, 11)).ValueOrDie();
  EXPECT_EQ(split.train.num_users(), 6);
  EXPECT_EQ(split.train.num_items(), 9);
}

TEST(RandomHoldoutSplitTest, DeterministicInSeed) {
  const RatingMatrix m = DenseMatrix(8, 8, 4);
  const TrainTestSplit a = std::move(RandomHoldoutSplit(m, 0.3, 5)).ValueOrDie();
  const TrainTestSplit b = std::move(RandomHoldoutSplit(m, 0.3, 5)).ValueOrDie();
  EXPECT_EQ(a.test, b.test);
  const TrainTestSplit c = std::move(RandomHoldoutSplit(m, 0.3, 6)).ValueOrDie();
  EXPECT_NE(a.test, c.test);
}

TEST(LeaveKOutSplitTest, ValidatesArguments) {
  const RatingMatrix m = DenseMatrix(4, 4, 1);
  EXPECT_TRUE(LeaveKOutSplit(m, 0, 1).status().IsInvalidArgument());
}

TEST(LeaveKOutSplitTest, HoldsOutExactlyKPerEligibleUser) {
  const RatingMatrix m = DenseMatrix(10, 12, 8);
  const TrainTestSplit split = std::move(LeaveKOutSplit(m, 3, 9)).ValueOrDie();
  std::vector<int32_t> held(10, 0);
  for (const RatingTriple& t : split.test) held[static_cast<size_t>(t.user)]++;
  for (const int32_t count : held) EXPECT_EQ(count, 3);
  EXPECT_EQ(split.train.num_ratings(), 10 * (12 - 3));
}

TEST(LeaveKOutSplitTest, SmallUsersKeepEverything) {
  RatingMatrixBuilder builder;
  ASSERT_TRUE(builder.Add(0, 0, 3).ok());
  ASSERT_TRUE(builder.Add(0, 1, 4).ok());
  ASSERT_TRUE(builder.Add(1, 0, 5).ok());  // only one rating: below k+1
  const RatingMatrix m = std::move(builder.Build()).ValueOrDie();
  const TrainTestSplit split = std::move(LeaveKOutSplit(m, 2, 1)).ValueOrDie();
  // User 0 has exactly k ratings (<= k) and user 1 has 1: nothing held out.
  EXPECT_TRUE(split.test.empty());
  EXPECT_EQ(split.train.num_ratings(), 3);
}

TEST(LeaveKOutSplitTest, HeldOutRatingsKeepTheirValues) {
  const RatingMatrix m = DenseMatrix(5, 8, 12);
  const TrainTestSplit split = std::move(LeaveKOutSplit(m, 2, 3)).ValueOrDie();
  for (const RatingTriple& t : split.test) {
    EXPECT_EQ(m.GetRating(t.user, t.item), t.value);
  }
}

}  // namespace
}  // namespace fairrec
