#include "text/tfidf.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fairrec {
namespace {

TfIdfOptions PlainOptions() {
  TfIdfOptions options;
  options.tokenizer.remove_stopwords = false;
  options.tokenizer.min_token_length = 1;
  return options;
}

TEST(TfIdfTest, FitOnEmptyCorpusFails) {
  TfIdfVectorizer vectorizer;
  EXPECT_TRUE(vectorizer.Fit({}).IsInvalidArgument());
  EXPECT_FALSE(vectorizer.fitted());
}

TEST(TfIdfTest, Definition4IdfValues) {
  // 4 documents; "flu" appears in 2, "rare" in 1, "common" in all 4.
  TfIdfVectorizer vectorizer(PlainOptions());
  ASSERT_TRUE(vectorizer
                  .Fit({"flu common", "flu common", "rare common", "common"})
                  .ok());
  const auto& vocab = vectorizer.vocabulary();
  EXPECT_NEAR(vectorizer.IdfOf(vocab.Lookup("flu")), std::log(4.0 / 2.0), 1e-12);
  EXPECT_NEAR(vectorizer.IdfOf(vocab.Lookup("rare")), std::log(4.0 / 1.0), 1e-12);
  // Definition 4 deliberately zeroes corpus-wide terms: log(4/4) = 0.
  EXPECT_NEAR(vectorizer.IdfOf(vocab.Lookup("common")), 0.0, 1e-12);
}

TEST(TfIdfTest, TransformMultipliesTfByIdf) {
  TfIdfVectorizer vectorizer(PlainOptions());
  ASSERT_TRUE(vectorizer.Fit({"flu flu cough", "cough", "fever"}).ok());
  const auto& vocab = vectorizer.vocabulary();
  const SparseVector v = vectorizer.Transform("flu flu cough");
  // tf(flu) = 2, idf(flu) = log(3/1).
  EXPECT_NEAR(v.ValueAt(vocab.Lookup("flu")), 2.0 * std::log(3.0), 1e-12);
  // tf(cough) = 1, idf(cough) = log(3/2).
  EXPECT_NEAR(v.ValueAt(vocab.Lookup("cough")), std::log(1.5), 1e-12);
}

TEST(TfIdfTest, UnseenTermsAreIgnored) {
  TfIdfVectorizer vectorizer(PlainOptions());
  ASSERT_TRUE(vectorizer.Fit({"flu", "cough"}).ok());
  const SparseVector v = vectorizer.Transform("unknown words only");
  EXPECT_TRUE(v.empty());
}

TEST(TfIdfTest, SublinearTf) {
  TfIdfOptions options = PlainOptions();
  options.sublinear_tf = true;
  TfIdfVectorizer vectorizer(options);
  ASSERT_TRUE(vectorizer.Fit({"flu flu flu cough", "cough"}).ok());
  const auto& vocab = vectorizer.vocabulary();
  const SparseVector v = vectorizer.Transform("flu flu flu");
  EXPECT_NEAR(v.ValueAt(vocab.Lookup("flu")),
              (1.0 + std::log(3.0)) * std::log(2.0), 1e-12);
}

TEST(TfIdfTest, SmoothIdfNeverZero) {
  TfIdfOptions options = PlainOptions();
  options.smooth_idf = true;
  TfIdfVectorizer vectorizer(options);
  ASSERT_TRUE(vectorizer.Fit({"common", "common"}).ok());
  EXPECT_GT(vectorizer.IdfOf(vectorizer.vocabulary().Lookup("common")), 0.0);
}

TEST(TfIdfTest, L2NormalizeOption) {
  TfIdfOptions options = PlainOptions();
  options.l2_normalize = true;
  TfIdfVectorizer vectorizer(options);
  ASSERT_TRUE(vectorizer.Fit({"flu cough", "fever"}).ok());
  const SparseVector v = vectorizer.Transform("flu cough");
  EXPECT_NEAR(v.NormL2(), 1.0, 1e-12);
}

TEST(TfIdfTest, FitTransformMatchesSeparateCalls) {
  TfIdfVectorizer a(PlainOptions());
  TfIdfVectorizer b(PlainOptions());
  const std::vector<std::string> corpus{"flu cough", "cough fever", "fever"};
  const auto batch = a.FitTransform(corpus);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(b.Fit(corpus).ok());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ((*batch)[i], b.Transform(corpus[i])) << "doc " << i;
  }
}

TEST(TfIdfTest, IdenticalDocumentsHaveCosineOne) {
  TfIdfVectorizer vectorizer(PlainOptions());
  ASSERT_TRUE(vectorizer.Fit({"flu cough fever", "headache", "nausea"}).ok());
  const SparseVector a = vectorizer.Transform("flu cough fever");
  const SparseVector b = vectorizer.Transform("flu cough fever");
  EXPECT_NEAR(SparseVector::Cosine(a, b), 1.0, 1e-12);
}

TEST(VocabularyTest, InternsAndCountsDocumentFrequency) {
  Vocabulary vocab;
  vocab.AddDocument({"a", "b", "a"});  // distinct terms only counted once
  vocab.AddDocument({"b", "c"});
  EXPECT_EQ(vocab.size(), 3);
  EXPECT_EQ(vocab.num_documents(), 2);
  EXPECT_EQ(vocab.DocumentFrequency(vocab.Lookup("a")), 1);
  EXPECT_EQ(vocab.DocumentFrequency(vocab.Lookup("b")), 2);
  EXPECT_EQ(vocab.DocumentFrequency(vocab.Lookup("c")), 1);
  EXPECT_EQ(vocab.Lookup("zzz"), Vocabulary::kUnknownTerm);
  EXPECT_EQ(vocab.TermText(vocab.Lookup("a")), "a");
}

}  // namespace
}  // namespace fairrec
