#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace fairrec {
namespace {

TEST(TokenizerTest, SplitsOnNonAlnumAndLowercases) {
  const Tokenizer tokenizer;
  EXPECT_EQ(tokenizer.Tokenize("Chest-Pain, acute!"),
            (std::vector<std::string>{"chest", "pain", "acute"}));
}

TEST(TokenizerTest, DropsShortTokens) {
  TokenizerOptions options;
  options.min_token_length = 3;
  options.remove_stopwords = false;
  const Tokenizer tokenizer(options);
  EXPECT_EQ(tokenizer.Tokenize("a is the flu"),
            (std::vector<std::string>{"the", "flu"}));
}

TEST(TokenizerTest, RemovesStopwords) {
  const Tokenizer tokenizer;  // stopwords on by default
  EXPECT_EQ(tokenizer.Tokenize("treatment of the lungs"),
            (std::vector<std::string>{"treatment", "lungs"}));
}

TEST(TokenizerTest, KeepsStopwordsWhenDisabled) {
  TokenizerOptions options;
  options.remove_stopwords = false;
  const Tokenizer tokenizer(options);
  EXPECT_EQ(tokenizer.Tokenize("of the lungs"),
            (std::vector<std::string>{"of", "the", "lungs"}));
}

TEST(TokenizerTest, KeepsNumbersByDefault) {
  const Tokenizer tokenizer;
  // Dosage numbers are discriminative in medication strings (Table I).
  EXPECT_EQ(tokenizer.Tokenize("Ramipril 10 MG"),
            (std::vector<std::string>{"ramipril", "10"}));
}

TEST(TokenizerTest, DropsNumbersWhenConfigured) {
  TokenizerOptions options;
  options.keep_numbers = false;
  const Tokenizer tokenizer(options);
  EXPECT_EQ(tokenizer.Tokenize("Ramipril 10 500"),
            (std::vector<std::string>{"ramipril"}));
}

TEST(TokenizerTest, CaseSensitiveMode) {
  TokenizerOptions options;
  options.lowercase = false;
  options.remove_stopwords = false;
  const Tokenizer tokenizer(options);
  EXPECT_EQ(tokenizer.Tokenize("Chest PAIN"),
            (std::vector<std::string>{"Chest", "PAIN"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnlyInput) {
  const Tokenizer tokenizer;
  EXPECT_TRUE(tokenizer.Tokenize("").empty());
  EXPECT_TRUE(tokenizer.Tokenize("!!! ... ---").empty());
}

TEST(TokenizerTest, MedicationLineFromTableI) {
  const Tokenizer tokenizer;
  // "MG" and "Oral" are in the stopword list as units/forms.
  EXPECT_EQ(tokenizer.Tokenize("Niacin 500 MG Extended Release Tablet"),
            (std::vector<std::string>{"niacin", "500", "extended", "release",
                                      "tablet"}));
}

}  // namespace
}  // namespace fairrec
