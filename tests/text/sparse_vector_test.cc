#include "text/sparse_vector.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fairrec {
namespace {

TEST(SparseVectorTest, FromPairsSortsAndMerges) {
  const SparseVector v = SparseVector::FromPairs({{3, 1.0}, {1, 2.0}, {3, 4.0}});
  ASSERT_EQ(v.nnz(), 2u);
  EXPECT_EQ(v.entries()[0], (SparseVector::Entry{1, 2.0}));
  EXPECT_EQ(v.entries()[1], (SparseVector::Entry{3, 5.0}));
}

TEST(SparseVectorTest, FromPairsDropsZeros) {
  const SparseVector v = SparseVector::FromPairs({{1, 0.0}, {2, 3.0}, {4, -3.0}, {4, 3.0}});
  ASSERT_EQ(v.nnz(), 1u);
  EXPECT_EQ(v.entries()[0].index, 2);
}

TEST(SparseVectorTest, ValueAt) {
  const SparseVector v = SparseVector::FromPairs({{1, 2.0}, {5, 7.0}});
  EXPECT_DOUBLE_EQ(v.ValueAt(1), 2.0);
  EXPECT_DOUBLE_EQ(v.ValueAt(5), 7.0);
  EXPECT_DOUBLE_EQ(v.ValueAt(3), 0.0);
  EXPECT_DOUBLE_EQ(v.ValueAt(99), 0.0);
}

TEST(SparseVectorTest, DotProduct) {
  const SparseVector a = SparseVector::FromPairs({{0, 1.0}, {2, 2.0}, {4, 3.0}});
  const SparseVector b = SparseVector::FromPairs({{2, 5.0}, {3, 9.0}, {4, 1.0}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 2.0 * 5.0 + 3.0 * 1.0);
  EXPECT_DOUBLE_EQ(b.Dot(a), a.Dot(b));  // symmetry
}

TEST(SparseVectorTest, DotWithDisjointIsZero) {
  const SparseVector a = SparseVector::FromPairs({{0, 1.0}});
  const SparseVector b = SparseVector::FromPairs({{1, 1.0}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 0.0);
}

TEST(SparseVectorTest, NormL2) {
  const SparseVector v = SparseVector::FromPairs({{0, 3.0}, {1, 4.0}});
  EXPECT_DOUBLE_EQ(v.NormL2(), 5.0);
  EXPECT_DOUBLE_EQ(SparseVector().NormL2(), 0.0);
}

TEST(SparseVectorTest, NormalizeMakesUnitLength) {
  SparseVector v = SparseVector::FromPairs({{0, 3.0}, {1, 4.0}});
  v.Normalize();
  EXPECT_NEAR(v.NormL2(), 1.0, 1e-12);
  EXPECT_NEAR(v.ValueAt(0), 0.6, 1e-12);
}

TEST(SparseVectorTest, NormalizeZeroVectorIsNoop) {
  SparseVector v;
  v.Normalize();
  EXPECT_TRUE(v.empty());
}

TEST(SparseVectorTest, CosineSelfIsOne) {
  const SparseVector v = SparseVector::FromPairs({{0, 2.0}, {7, 1.5}});
  EXPECT_NEAR(SparseVector::Cosine(v, v), 1.0, 1e-12);
}

TEST(SparseVectorTest, CosineOrthogonalIsZero) {
  const SparseVector a = SparseVector::FromPairs({{0, 1.0}});
  const SparseVector b = SparseVector::FromPairs({{1, 1.0}});
  EXPECT_DOUBLE_EQ(SparseVector::Cosine(a, b), 0.0);
}

TEST(SparseVectorTest, CosineWithZeroVectorIsZero) {
  const SparseVector a = SparseVector::FromPairs({{0, 1.0}});
  EXPECT_DOUBLE_EQ(SparseVector::Cosine(a, SparseVector()), 0.0);
}

TEST(SparseVectorTest, CosineScaleInvariant) {
  const SparseVector a = SparseVector::FromPairs({{0, 1.0}, {1, 2.0}});
  const SparseVector b = SparseVector::FromPairs({{0, 10.0}, {1, 20.0}});
  EXPECT_NEAR(SparseVector::Cosine(a, b), 1.0, 1e-12);
}

TEST(SparseVectorTest, CosineKnownAngle) {
  const SparseVector a = SparseVector::FromPairs({{0, 1.0}, {1, 0.0}});
  const SparseVector b = SparseVector::FromPairs({{0, 1.0}, {1, 1.0}});
  EXPECT_NEAR(SparseVector::Cosine(a, b), 1.0 / std::sqrt(2.0), 1e-12);
}

}  // namespace
}  // namespace fairrec
