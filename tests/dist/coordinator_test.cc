// DistBuildCoordinator failure-matrix tests. Every scenario ends with the
// same assertion: the index the coordinator hands back is byte-identical to
// the single-process PairwiseSimilarityEngine::BuildPeerIndex — through
// crashes, corruption, stragglers, retries, and coordinator death.

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <string>
#include <vector>

#include "common/blob_io.h"
#include "common/random.h"
#include "common/retry.h"
#include "dist/coordinator.h"
#include "dist/partial_artifact.h"
#include "ratings/rating_matrix.h"
#include "sim/pairwise_engine.h"

namespace fairrec {
namespace {

RatingMatrix Corpus(int32_t num_users, int32_t num_items, uint64_t seed) {
  RatingMatrixBuilder builder;
  Rng rng(seed);
  for (UserId u = 0; u < num_users; ++u) {
    for (ItemId i = 0; i < num_items; ++i) {
      if (rng.NextBool(0.4)) {
        EXPECT_TRUE(
            builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5))).ok());
      }
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

DistWorkerOptions WorkerOptions() {
  DistWorkerOptions options;
  options.peers.delta = 0.2;
  options.peers.max_peers_per_user = 6;
  return options;
}

PeerIndex Reference(const RatingMatrix& matrix) {
  const DistWorkerOptions options = WorkerOptions();
  const PairwiseSimilarityEngine engine(&matrix, options.similarity, {});
  return std::move(engine.BuildPeerIndex(options.peers)).ValueOrDie();
}

/// Fresh scratch directory per test case.
std::string ScratchDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/fairrec_coord_" + name;
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  auto existing = ListPartialArtifactFiles(dir);
  if (existing.ok()) {
    for (const std::string& path : *existing) {
      EXPECT_TRUE(RemovePath(path).ok());
    }
  }
  return dir;
}

DistBuildOptions BaseOptions(const std::string& dir, int32_t partitions,
                             FakeClock* clock) {
  DistBuildOptions options;
  options.num_partitions = partitions;
  options.worker_slots = 2;
  options.artifact_dir = dir;
  options.worker = WorkerOptions();
  options.retry.max_attempts = 4;
  options.retry.initial_backoff_millis = 100;
  options.retry.backoff_multiplier = 2.0;
  options.retry.max_backoff_millis = 1000;
  options.clock = clock;
  return options;
}

TEST(DistBuildCoordinatorTest, HappyPathMatchesEngineAtEveryLayout) {
  const RatingMatrix matrix = Corpus(40, 18, 0xc0de);
  const PeerIndex reference = Reference(matrix);
  for (const int32_t partitions : {1, 2, 4, 8}) {
    FakeClock clock;
    const std::string dir =
        ScratchDir("happy_" + std::to_string(partitions));
    DistBuildCoordinator coordinator(
        &matrix, BaseOptions(dir, partitions, &clock));
    auto result = coordinator.Run();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->index == reference) << partitions << " partitions";
    EXPECT_EQ(result->stats.attempts_launched, partitions);
    EXPECT_EQ(result->stats.attempts_failed, 0);
    EXPECT_EQ(result->stats.merge_passes, 1);
    EXPECT_EQ(result->artifact_paths.size(),
              static_cast<size_t>(partitions));
  }
}

TEST(DistBuildCoordinatorTest, EveryWorkerKilledOnceStillConverges) {
  // Each partition's first attempt dies after nothing, mid-write, or after
  // the durable commit (the ack-loss window) — rotating through the three
  // failure shapes — and the retried attempts still produce the reference
  // bytes. This is the acceptance criterion's "every worker task killed at
  // least once" clause, exercised without failpoints so it also runs under
  // NDEBUG/Release.
  const RatingMatrix matrix = Corpus(36, 16, 0xdead);
  const PeerIndex reference = Reference(matrix);
  const int32_t partitions = 4;
  FakeClock clock;
  const std::string dir = ScratchDir("killed_once");
  DistBuildCoordinator coordinator(&matrix,
                                   BaseOptions(dir, partitions, &clock));
  std::atomic<int32_t> kills{0};
  coordinator.set_worker_fn([&](const RatingMatrix& m,
                                const PartitionDescriptor& partition,
                                int32_t attempt,
                                const DistWorkerOptions& options,
                                const std::string& path) -> Status {
    if (attempt == 0) {
      kills.fetch_add(1);
      switch (partition.index % 3) {
        case 0:  // died before emitting anything
          return Status::IOError("injected: worker lost before emit");
        case 1: {  // died mid-write: a torn, unparseable file is left behind
          std::ofstream torn(path, std::ios::binary | std::ios::trunc);
          torn.write("torn artifact", 13);
          return Status::IOError("injected: worker lost mid-write");
        }
        default: {  // died after the durable commit, before the ack
          auto artifact =
              BuildPartialPeerArtifact(m, partition, attempt, options);
          if (!artifact.ok()) return artifact.status();
          FAIRREC_RETURN_NOT_OK(artifact->WriteFile(path));
          return Status::IOError("injected: ack lost after commit");
        }
      }
    }
    auto artifact = BuildPartialPeerArtifact(m, partition, attempt, options);
    if (!artifact.ok()) return artifact.status();
    return artifact->WriteFile(path);
  });
  auto result = coordinator.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->index == reference);
  EXPECT_EQ(kills.load(), partitions);
  EXPECT_EQ(result->stats.attempts_failed, partitions);
  EXPECT_EQ(result->stats.attempts_launched, 2 * partitions);
  EXPECT_GT(result->stats.backoff_waited_millis, 0);
}

TEST(DistBuildCoordinatorTest, AckLossArtifactIsAdoptedNotRebuilt) {
  // The partition whose worker committed the artifact and then died: the
  // retry's attempt-1 file and the orphaned attempt-0 file both sit in the
  // directory; the merge dedup keeps the lowest attempt and parity holds.
  const RatingMatrix matrix = Corpus(24, 12, 0xacc);
  const PeerIndex reference = Reference(matrix);
  FakeClock clock;
  const std::string dir = ScratchDir("ack_loss");
  DistBuildCoordinator coordinator(&matrix, BaseOptions(dir, 2, &clock));
  coordinator.set_worker_fn([&](const RatingMatrix& m,
                                const PartitionDescriptor& partition,
                                int32_t attempt,
                                const DistWorkerOptions& options,
                                const std::string& path) -> Status {
    auto artifact = BuildPartialPeerArtifact(m, partition, attempt, options);
    if (!artifact.ok()) return artifact.status();
    FAIRREC_RETURN_NOT_OK(artifact->WriteFile(path));
    if (partition.index == 1 && attempt == 0) {
      return Status::IOError("injected: ack lost");
    }
    return Status::OK();
  });
  auto result = coordinator.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->index == reference);
  // Both files exist; the coordinator chose attempt 1 for partition 1.
  EXPECT_TRUE(PathExists(dir + "/" + PartialArtifactFileName(1, 0)));
  EXPECT_EQ(result->artifact_paths[1],
            dir + "/" + PartialArtifactFileName(1, 1));
}

TEST(DistBuildCoordinatorTest, CorruptArtifactIsRejectedRequeuedAndRebuilt) {
  // The worker reports OK but the bytes on disk are garbage: read-back
  // validation must catch it (DataLoss), delete the file, and requeue.
  const RatingMatrix matrix = Corpus(28, 14, 0xc0117);
  const PeerIndex reference = Reference(matrix);
  FakeClock clock;
  const std::string dir = ScratchDir("corrupt");
  DistBuildCoordinator coordinator(&matrix, BaseOptions(dir, 2, &clock));
  coordinator.set_worker_fn([&](const RatingMatrix& m,
                                const PartitionDescriptor& partition,
                                int32_t attempt,
                                const DistWorkerOptions& options,
                                const std::string& path) -> Status {
    if (partition.index == 0 && attempt == 0) {
      std::ofstream garbage(path, std::ios::binary | std::ios::trunc);
      garbage.write("not a blob at all", 17);
      return Status::OK();  // the lie read-back validation exists for
    }
    auto artifact = BuildPartialPeerArtifact(m, partition, attempt, options);
    if (!artifact.ok()) return artifact.status();
    return artifact->WriteFile(path);
  });
  auto result = coordinator.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->index == reference);
  EXPECT_EQ(result->stats.artifacts_rejected, 1);
  EXPECT_FALSE(PathExists(dir + "/" + PartialArtifactFileName(0, 0)));
}

TEST(DistBuildCoordinatorTest, FingerprintMismatchIsPermanentNotRetried) {
  // A worker that computes against the wrong corpus is a configuration bug:
  // InvalidArgument, no retry (attempt 1 would fail identically).
  const RatingMatrix matrix = Corpus(24, 12, 0xf00d);
  const RatingMatrix wrong = Corpus(24, 12, 0xf00d ^ 1);
  FakeClock clock;
  const std::string dir = ScratchDir("fingerprint");
  DistBuildCoordinator coordinator(&matrix, BaseOptions(dir, 2, &clock));
  std::atomic<int32_t> calls{0};
  coordinator.set_worker_fn([&](const RatingMatrix& m,
                                const PartitionDescriptor& partition,
                                int32_t attempt,
                                const DistWorkerOptions& options,
                                const std::string& path) -> Status {
    calls.fetch_add(1);
    const RatingMatrix& source = partition.index == 0 ? wrong : m;
    auto artifact =
        BuildPartialPeerArtifact(source, partition, attempt, options);
    if (!artifact.ok()) return artifact.status();
    return artifact->WriteFile(path);
  });
  const auto result = coordinator.Run();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument())
      << result.status().ToString();
  // Partition 0 ran exactly once — a fingerprint mismatch must not burn the
  // retry budget.
  EXPECT_LE(calls.load(), 3);
}

TEST(DistBuildCoordinatorTest, RetryBudgetExhaustionIsResourceExhausted) {
  const RatingMatrix matrix = Corpus(20, 10, 0xe0f);
  FakeClock clock;
  auto options = BaseOptions(ScratchDir("exhausted"), 2, &clock);
  options.retry.max_attempts = 3;
  DistBuildCoordinator coordinator(&matrix, options);
  std::atomic<int32_t> partition0_attempts{0};
  coordinator.set_worker_fn([&](const RatingMatrix& m,
                                const PartitionDescriptor& partition,
                                int32_t attempt,
                                const DistWorkerOptions& worker_options,
                                const std::string& path) -> Status {
    if (partition.index == 0) {
      partition0_attempts.fetch_add(1);
      return Status::IOError("injected: disk on fire");
    }
    auto artifact =
        BuildPartialPeerArtifact(m, partition, attempt, worker_options);
    if (!artifact.ok()) return artifact.status();
    return artifact->WriteFile(path);
  });
  const auto result = coordinator.Run();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("disk on fire"),
            std::string::npos);
  EXPECT_EQ(partition0_attempts.load(), 3);
}

TEST(DistBuildCoordinatorTest, BackoffFollowsThePolicyScheduleInVirtualTime) {
  // Two failures before success: the backoffs booked must be exactly
  // BackoffMillis(policy, 1) + BackoffMillis(policy, 2) with jitter off —
  // 100 + 200 virtual milliseconds under the Base policy.
  const RatingMatrix matrix = Corpus(18, 10, 0xbac0);
  const PeerIndex reference = Reference(matrix);
  FakeClock clock;
  auto options = BaseOptions(ScratchDir("backoff"), 1, &clock);
  options.retry.jitter_fraction = 0.0;
  DistBuildCoordinator coordinator(&matrix, options);
  std::atomic<int32_t> attempts{0};
  coordinator.set_worker_fn([&](const RatingMatrix& m,
                                const PartitionDescriptor& partition,
                                int32_t attempt,
                                const DistWorkerOptions& worker_options,
                                const std::string& path) -> Status {
    if (attempts.fetch_add(1) < 2) {
      return Status::IOError("injected: transient");
    }
    auto artifact =
        BuildPartialPeerArtifact(m, partition, attempt, worker_options);
    if (!artifact.ok()) return artifact.status();
    return artifact->WriteFile(path);
  });
  auto result = coordinator.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->index == reference);
  EXPECT_EQ(result->stats.backoff_waited_millis,
            BackoffMillis(options.retry, 1) + BackoffMillis(options.retry, 2));
  EXPECT_EQ(result->stats.backoff_waited_millis, 300);
}

TEST(DistBuildCoordinatorTest, StragglerGetsSpeculativeAttemptThatWins) {
  // Partition 0's first attempt blocks until virtual time passes the straggler
  // threshold; the speculative attempt completes, wins, and the straggler's
  // late OK (with its duplicate artifact) is absorbed by the dedup.
  const RatingMatrix matrix = Corpus(30, 14, 0x51a9);
  const PeerIndex reference = Reference(matrix);
  FakeClock clock;
  auto options = BaseOptions(ScratchDir("straggler"), 2, &clock);
  options.worker_slots = 3;
  options.task_timeout_millis = 500;
  DistBuildCoordinator coordinator(&matrix, options);
  std::atomic<bool> speculative_finished{false};
  coordinator.set_worker_fn([&](const RatingMatrix& m,
                                const PartitionDescriptor& partition,
                                int32_t attempt,
                                const DistWorkerOptions& worker_options,
                                const std::string& path) -> Status {
    if (partition.index == 0 && attempt == 0) {
      // The straggler: stall, advancing virtual time in slices, until the
      // speculative attempt has demonstrably won — so the speculation path
      // runs deterministically regardless of thread scheduling.
      while (!speculative_finished.load()) clock.SleepMillis(50);
    }
    auto artifact =
        BuildPartialPeerArtifact(m, partition, attempt, worker_options);
    if (!artifact.ok()) return artifact.status();
    FAIRREC_RETURN_NOT_OK(artifact->WriteFile(path));
    if (partition.index == 0 && attempt > 0) {
      speculative_finished.store(true);
    }
    return Status::OK();
  });
  auto result = coordinator.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->index == reference);
  EXPECT_EQ(result->stats.speculative_attempts, 1);
  EXPECT_EQ(result->stats.attempts_launched, 3);
}

TEST(DistBuildCoordinatorTest, RerunAfterCoordinatorDeathReusesArtifacts) {
  // Simulated coordinator death after the build phase: the artifacts are on
  // disk but no merge happened. A fresh coordinator over the same directory
  // must adopt them all without launching a single worker.
  const RatingMatrix matrix = Corpus(32, 15, 0x9e57a);
  const PeerIndex reference = Reference(matrix);
  const std::string dir = ScratchDir("rerun");
  for (int32_t p = 0; p < 3; ++p) {
    auto artifact = BuildPartialPeerArtifact(
        matrix, MakePartition(p, 3, matrix.num_users()), /*attempt=*/0,
        WorkerOptions());
    ASSERT_TRUE(artifact.ok());
    ASSERT_TRUE(
        artifact->WriteFile(dir + "/" + PartialArtifactFileName(p, 0)).ok());
  }
  FakeClock clock;
  DistBuildCoordinator coordinator(&matrix, BaseOptions(dir, 3, &clock));
  coordinator.set_worker_fn([](const RatingMatrix&,
                               const PartitionDescriptor&, int32_t,
                               const DistWorkerOptions&,
                               const std::string&) -> Status {
    ADD_FAILURE() << "no worker should launch when every artifact is reusable";
    return Status::Internal("unreachable");
  });
  auto result = coordinator.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->index == reference);
  EXPECT_EQ(result->stats.artifacts_reused, 3);
  EXPECT_EQ(result->stats.attempts_launched, 0);
}

TEST(DistBuildCoordinatorTest, StaleArtifactsFromAnotherCorpusAreDiscarded) {
  // Leftovers from a previous build of a *different* corpus sit in the
  // directory: they must be ignored (deleted), not merged and not fatal.
  const RatingMatrix matrix = Corpus(26, 12, 0x57a1e);
  const RatingMatrix previous = Corpus(26, 12, 0x57a1e ^ 1);
  const PeerIndex reference = Reference(matrix);
  const std::string dir = ScratchDir("stale");
  auto leftover = BuildPartialPeerArtifact(
      previous, MakePartition(0, 2, previous.num_users()), /*attempt=*/0,
      WorkerOptions());
  ASSERT_TRUE(leftover.ok());
  ASSERT_TRUE(
      leftover->WriteFile(dir + "/" + PartialArtifactFileName(0, 0)).ok());

  FakeClock clock;
  DistBuildCoordinator coordinator(&matrix, BaseOptions(dir, 2, &clock));
  auto result = coordinator.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->index == reference);
  EXPECT_EQ(result->stats.stale_artifacts_ignored, 1);
  EXPECT_EQ(result->stats.artifacts_reused, 0);
}

TEST(DistBuildCoordinatorTest, SingleWorkerSlotSerializesButStaysExact) {
  // worker_slots=1 degenerates to a sequential build — the scheduling order
  // must not leak into the bytes.
  const RatingMatrix matrix = Corpus(34, 16, 0x0107);
  const PeerIndex reference = Reference(matrix);
  FakeClock clock;
  auto options = BaseOptions(ScratchDir("serial"), 4, &clock);
  options.worker_slots = 1;
  DistBuildCoordinator coordinator(&matrix, options);
  auto result = coordinator.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->index == reference);
}

TEST(DistBuildCoordinatorTest, ValidatesItsOptions) {
  const RatingMatrix matrix = Corpus(10, 8, 0xbad0);
  FakeClock clock;
  {
    auto options = BaseOptions(ScratchDir("opts"), 1, &clock);
    options.num_partitions = 0;
    EXPECT_TRUE(DistBuildCoordinator(&matrix, options)
                    .Run()
                    .status()
                    .IsInvalidArgument());
  }
  {
    auto options = BaseOptions(ScratchDir("opts"), 1, &clock);
    options.artifact_dir.clear();
    EXPECT_TRUE(DistBuildCoordinator(&matrix, options)
                    .Run()
                    .status()
                    .IsInvalidArgument());
  }
  {
    auto options = BaseOptions(ScratchDir("opts"), 1, &clock);
    options.retry.max_attempts = 0;
    EXPECT_TRUE(DistBuildCoordinator(&matrix, options)
                    .Run()
                    .status()
                    .IsInvalidArgument());
  }
}

}  // namespace
}  // namespace fairrec
