// PartialPeerArtifact contract tests: the wire round-trip, the manifest
// validations, and above all the merge-parity theorem — MergePartialArtifacts
// over any partition layout reproduces the single-process
// PairwiseSimilarityEngine::BuildPeerIndex byte for byte, capped or not,
// with duplicate and speculative partials deduped away.

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "common/blob_io.h"
#include "common/random.h"
#include "dist/partial_artifact.h"
#include "mapreduce/pipeline.h"
#include "ratings/rating_matrix.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"

namespace fairrec {
namespace {

RatingMatrix Corpus(int32_t num_users, int32_t num_items, uint64_t seed,
                    double density = 0.4) {
  RatingMatrixBuilder builder;
  Rng rng(seed);
  for (UserId u = 0; u < num_users; ++u) {
    for (ItemId i = 0; i < num_items; ++i) {
      if (rng.NextBool(density)) {
        EXPECT_TRUE(
            builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5))).ok());
      }
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

std::vector<PartialPeerArtifact> BuildAllPartials(
    const RatingMatrix& matrix, int32_t count,
    const DistWorkerOptions& options) {
  std::vector<PartialPeerArtifact> partials;
  for (int32_t p = 0; p < count; ++p) {
    auto artifact = BuildPartialPeerArtifact(
        matrix, MakePartition(p, count, matrix.num_users()), /*attempt=*/0,
        options);
    EXPECT_TRUE(artifact.ok()) << artifact.status().ToString();
    partials.push_back(std::move(*artifact));
  }
  return partials;
}

PeerIndex ReferenceIndex(const RatingMatrix& matrix,
                         const DistWorkerOptions& options) {
  const PairwiseSimilarityEngine engine(&matrix, options.similarity, {});
  return std::move(engine.BuildPeerIndex(options.peers)).ValueOrDie();
}

TEST(MakePartitionTest, TilesTheUserRangeEvenly) {
  for (const int32_t num_users : {0, 1, 7, 8, 100}) {
    for (const int32_t count : {1, 2, 3, 8, 11}) {
      UserId expected_first = 0;
      for (int32_t p = 0; p < count; ++p) {
        const PartitionDescriptor slice = MakePartition(p, count, num_users);
        EXPECT_EQ(slice.index, p);
        EXPECT_EQ(slice.count, count);
        EXPECT_EQ(slice.user_first, expected_first);
        EXPECT_GE(slice.user_last, slice.user_first);
        expected_first = slice.user_last;
      }
      EXPECT_EQ(expected_first, num_users)
          << num_users << " users, " << count << " partitions";
    }
  }
}

TEST(PartialPeerArtifactTest, SerializeRoundTripsExactly) {
  const RatingMatrix matrix = Corpus(20, 12, 0xd157);
  DistWorkerOptions options;
  options.peers.delta = 0.05;
  options.peers.max_peers_per_user = 5;
  auto artifact = BuildPartialPeerArtifact(
      matrix, MakePartition(1, 3, matrix.num_users()), /*attempt=*/2, options);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  ASSERT_GT(artifact->rows.num_entries(), 0);

  std::string bytes;
  artifact->SerializeTo(bytes);
  auto parsed = PartialPeerArtifact::Deserialize(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->manifest.fingerprint == artifact->manifest.fingerprint);
  EXPECT_TRUE(parsed->manifest.partition == artifact->manifest.partition);
  EXPECT_EQ(parsed->manifest.attempt, 2);
  EXPECT_TRUE(parsed->rows == artifact->rows);
}

TEST(PartialPeerArtifactTest, FileRoundTripAndTypedReadErrors) {
  const RatingMatrix matrix = Corpus(16, 10, 0xf11e);
  DistWorkerOptions options;
  options.peers.delta = 0.05;
  auto artifact = BuildPartialPeerArtifact(
      matrix, MakePartition(0, 1, matrix.num_users()), /*attempt=*/0, options);
  ASSERT_TRUE(artifact.ok());

  const std::string dir = testing::TempDir() + "/fairrec_dist_artifact";
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  const std::string path = dir + "/" + PartialArtifactFileName(0, 0);
  ASSERT_TRUE(artifact->WriteFile(path).ok());

  auto read = PartialPeerArtifact::ReadFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read->rows == artifact->rows);

  EXPECT_TRUE(
      PartialPeerArtifact::ReadFile(dir + "/absent.blob").status().IsNotFound());
  ASSERT_TRUE(RemovePath(path).ok());
}

TEST(PartialPeerArtifactTest, DeserializeRejectsCrossPartitionEntries) {
  const RatingMatrix matrix = Corpus(18, 10, 0xc405);
  DistWorkerOptions options;
  options.peers.delta = 0.05;
  auto artifact = BuildPartialPeerArtifact(
      matrix, MakePartition(0, 2, matrix.num_users()), /*attempt=*/0, options);
  ASSERT_TRUE(artifact.ok());
  ASSERT_GT(artifact->rows.num_entries(), 0);

  // Re-label the slice as partition 1's: the rows now carry pairs partition
  // 1 does not own, which the ownership validation must refuse.
  artifact->manifest.partition = MakePartition(1, 2, matrix.num_users());
  std::string bytes;
  artifact->SerializeTo(bytes);
  const auto parsed = PartialPeerArtifact::Deserialize(bytes);
  EXPECT_TRUE(parsed.status().IsDataLoss()) << parsed.status().ToString();
}

TEST(PartialPeerArtifactTest, ListsArtifactFilesSorted) {
  const std::string dir = testing::TempDir() + "/fairrec_dist_list";
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  const RatingMatrix matrix = Corpus(10, 8, 0x115f);
  DistWorkerOptions options;
  for (const auto& [p, a] : {std::pair{1, 0}, {0, 2}, {0, 0}}) {
    auto artifact = BuildPartialPeerArtifact(
        matrix, MakePartition(p, 2, matrix.num_users()), a, options);
    ASSERT_TRUE(artifact.ok());
    ASSERT_TRUE(
        artifact->WriteFile(dir + "/" + PartialArtifactFileName(p, a)).ok());
  }
  const auto listed = ListPartialArtifactFiles(dir);
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 3u);
  EXPECT_EQ((*listed)[0], dir + "/" + PartialArtifactFileName(0, 0));
  EXPECT_EQ((*listed)[1], dir + "/" + PartialArtifactFileName(0, 2));
  EXPECT_EQ((*listed)[2], dir + "/" + PartialArtifactFileName(1, 0));
  for (const std::string& path : *listed) ASSERT_TRUE(RemovePath(path).ok());
}

// ---------------------------------------------------------------------------
// The merge-parity theorem, across layouts, caps, and block geometries.
// ---------------------------------------------------------------------------

TEST(MergePartialArtifactsTest, ByteIdenticalToEngineAtEveryLayout) {
  const RatingMatrix matrix = Corpus(57, 23, 0x9a51);
  for (const int32_t cap : {0, 4}) {
    DistWorkerOptions options;
    options.similarity.shift_to_unit_interval = true;
    options.peers.delta = 0.5;
    options.peers.max_peers_per_user = cap;
    const PeerIndex reference = ReferenceIndex(matrix, options);
    ASSERT_GT(reference.num_entries(), 0);
    for (const int32_t count : {1, 2, 3, 4, 8}) {
      const auto partials = BuildAllPartials(matrix, count, options);
      auto merged = MergePartialArtifacts(partials);
      ASSERT_TRUE(merged.ok()) << merged.status().ToString();
      // Byte identity, proved on the wire: operator== plus serialized bytes.
      EXPECT_TRUE(*merged == reference)
          << count << " partitions, cap " << cap;
      std::string merged_bytes;
      merged->SerializeTo(merged_bytes);
      std::string reference_bytes;
      reference.SerializeTo(reference_bytes);
      EXPECT_EQ(merged_bytes, reference_bytes)
          << count << " partitions, cap " << cap;
    }
  }
}

TEST(MergePartialArtifactsTest, WorkerTileGeometryDoesNotChangeTheBytes) {
  const RatingMatrix matrix = Corpus(41, 17, 0x7e0);
  DistWorkerOptions options;
  options.peers.delta = 0.1;
  options.peers.max_peers_per_user = 6;
  const PeerIndex reference = ReferenceIndex(matrix, options);
  for (const int32_t block : {1, 3, 16, 512}) {
    options.block_users = block;
    auto merged = MergePartialArtifacts(BuildAllPartials(matrix, 3, options));
    ASSERT_TRUE(merged.ok());
    EXPECT_TRUE(*merged == reference) << "block_users " << block;
  }
}

TEST(MergePartialArtifactsTest, UnevenAndDegenerateLayoutsMerge) {
  // More partitions than users: the tail slices are empty and must still
  // merge; a single-user corpus has no pairs at all.
  const RatingMatrix tiny = Corpus(3, 6, 0x73a, /*density=*/0.9);
  DistWorkerOptions options;
  options.peers.delta = 0.0;
  const PeerIndex reference = ReferenceIndex(tiny, options);
  auto merged = MergePartialArtifacts(BuildAllPartials(tiny, 7, options));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(*merged == reference);
}

TEST(MergePartialArtifactsTest, DuplicateAndSpeculativeAttemptsAreDeduped) {
  const RatingMatrix matrix = Corpus(30, 14, 0xdead);
  DistWorkerOptions options;
  options.peers.delta = 0.1;
  options.peers.max_peers_per_user = 4;
  const PeerIndex reference = ReferenceIndex(matrix, options);
  auto partials = BuildAllPartials(matrix, 3, options);
  // A re-emitted duplicate of partition 1 and a speculative attempt 5 of
  // partition 2 join the set; the merge keeps one artifact per partition.
  partials.push_back(partials[1]);
  auto speculative = BuildPartialPeerArtifact(
      matrix, MakePartition(2, 3, matrix.num_users()), /*attempt=*/5, options);
  ASSERT_TRUE(speculative.ok());
  partials.push_back(std::move(*speculative));
  auto merged = MergePartialArtifacts(partials);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(*merged == reference);
}

TEST(MergePartialArtifactsTest, TypedErrorsForInadmissibleSets) {
  const RatingMatrix matrix = Corpus(24, 12, 0xbad);
  DistWorkerOptions options;
  options.peers.delta = 0.1;
  auto partials = BuildAllPartials(matrix, 2, options);

  EXPECT_TRUE(MergePartialArtifacts({}).status().IsInvalidArgument());

  // Missing partition.
  {
    std::vector<PartialPeerArtifact> incomplete = {partials[0]};
    EXPECT_TRUE(
        MergePartialArtifacts(incomplete).status().IsInvalidArgument());
  }
  // Fingerprint mismatch: same shape, different ratings.
  {
    const RatingMatrix other = Corpus(24, 12, 0xbad ^ 1);
    auto foreign = BuildPartialPeerArtifact(
        other, MakePartition(1, 2, other.num_users()), 0, options);
    ASSERT_TRUE(foreign.ok());
    std::vector<PartialPeerArtifact> mixed = {partials[0],
                                              std::move(*foreign)};
    const auto merged = MergePartialArtifacts(mixed);
    EXPECT_TRUE(merged.status().IsInvalidArgument())
        << merged.status().ToString();
  }
  // Peer-option mismatch.
  {
    DistWorkerOptions other_options = options;
    other_options.peers.delta = 0.2;
    auto odd = BuildPartialPeerArtifact(
        matrix, MakePartition(1, 2, matrix.num_users()), 0, other_options);
    ASSERT_TRUE(odd.ok());
    std::vector<PartialPeerArtifact> mixed = {partials[0], std::move(*odd)};
    EXPECT_TRUE(MergePartialArtifacts(mixed).status().IsInvalidArgument());
  }
  // Partition-count mismatch.
  {
    auto lone = BuildPartialPeerArtifact(
        matrix, MakePartition(0, 1, matrix.num_users()), 0, options);
    ASSERT_TRUE(lone.ok());
    std::vector<PartialPeerArtifact> mixed = {partials[0], std::move(*lone)};
    EXPECT_TRUE(MergePartialArtifacts(mixed).status().IsInvalidArgument());
  }
}

TEST(MergePartialArtifactFilesTest, MergesFromDiskAndFlagsCorruption) {
  const RatingMatrix matrix = Corpus(26, 12, 0xf11e5);
  DistWorkerOptions options;
  options.peers.delta = 0.1;
  const std::string dir = testing::TempDir() + "/fairrec_dist_merge_files";
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  std::vector<std::string> paths;
  for (int32_t p = 0; p < 2; ++p) {
    auto artifact = BuildPartialPeerArtifact(
        matrix, MakePartition(p, 2, matrix.num_users()), 0, options);
    ASSERT_TRUE(artifact.ok());
    paths.push_back(dir + "/" + PartialArtifactFileName(p, 0));
    ASSERT_TRUE(artifact->WriteFile(paths.back()).ok());
  }
  auto merged = MergePartialArtifactFiles(paths);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(*merged == ReferenceIndex(matrix, options));

  // Truncate one file: the merge must refuse with DataLoss naming the path.
  std::string bytes;
  {
    auto read = PartialPeerArtifact::ReadFile(paths[1]);
    ASSERT_TRUE(read.ok());
    std::ofstream out(paths[1], std::ios::binary | std::ios::trunc);
    out.write("torn", 4);
  }
  const auto corrupt = MergePartialArtifactFiles(paths);
  EXPECT_TRUE(corrupt.status().IsDataLoss()) << corrupt.status().ToString();
  for (const std::string& path : paths) ASSERT_TRUE(RemovePath(path).ok());
}

// ---------------------------------------------------------------------------
// MapReduce boundary: Job 2's peer-list output rides the same wire format.
// ---------------------------------------------------------------------------

TEST(PipelineArtifactTest, PipelineEmitsItsPeerIndexAsASingleSliceArtifact) {
  const RatingMatrix matrix = Corpus(22, 14, 0x9a9e, /*density=*/0.5);
  const std::string dir = testing::TempDir() + "/fairrec_dist_pipeline";
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  const std::string path = dir + "/" + PartialArtifactFileName(0, 0);
  ASSERT_TRUE(RemovePath(path).ok());

  PipelineOptions options;
  options.delta = 0.3;
  options.artifact_path = path;
  const GroupRecommendationPipeline pipeline(options);
  const auto result = pipeline.Run(matrix, {0, 1, 2}, /*z=*/4);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->artifact_path, path);

  auto artifact = PartialPeerArtifact::ReadFile(path);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_TRUE(artifact->manifest.fingerprint == FingerprintCorpus(matrix));
  EXPECT_EQ(artifact->manifest.partition.count, 1);
  EXPECT_TRUE(artifact->rows == result->peer_index);

  // A one-slice artifact merges to itself: the §IV flow's Job 2 output is a
  // first-class citizen of the distributed merge protocol.
  std::vector<PartialPeerArtifact> partials = {std::move(*artifact)};
  auto merged = MergePartialArtifacts(partials);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(*merged == result->peer_index);
  ASSERT_TRUE(RemovePath(path).ok());
}

}  // namespace
}  // namespace fairrec
