#include "sim/similarity_matrix.h"

#include <utility>

#include <gtest/gtest.h>

namespace fairrec {
namespace {

/// Deterministic pairwise function of the ids, symmetric by construction.
class PairFunctionSimilarity final : public UserSimilarity {
 public:
  double Compute(UserId a, UserId b) const override {
    if (a > b) std::swap(a, b);
    return static_cast<double>(a * 31 + b) / 1000.0;
  }
  std::string name() const override { return "pairfn"; }
};

TEST(SimilarityMatrixTest, RejectsNonPositiveUserCount) {
  const PairFunctionSimilarity base;
  EXPECT_TRUE(
      SimilarityMatrix::Precompute(base, 0).status().IsInvalidArgument());
}

TEST(SimilarityMatrixTest, SingleUserMatrix) {
  const PairFunctionSimilarity base;
  const auto matrix = std::move(SimilarityMatrix::Precompute(base, 1)).ValueOrDie();
  EXPECT_EQ(matrix->num_users(), 1);
  EXPECT_DOUBLE_EQ(matrix->Compute(0, 0), 1.0);
}

TEST(SimilarityMatrixTest, MatchesBaseForEveryPair) {
  const PairFunctionSimilarity base;
  const int32_t n = 23;
  const auto matrix =
      std::move(SimilarityMatrix::Precompute(base, n, 3)).ValueOrDie();
  for (UserId a = 0; a < n; ++a) {
    for (UserId b = 0; b < n; ++b) {
      if (a == b) continue;
      EXPECT_DOUBLE_EQ(matrix->Compute(a, b), base.Compute(a, b))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(SimilarityMatrixTest, SelfSimilarityIsOneByConvention) {
  const PairFunctionSimilarity base;
  const auto matrix = std::move(SimilarityMatrix::Precompute(base, 5)).ValueOrDie();
  for (UserId u = 0; u < 5; ++u) EXPECT_DOUBLE_EQ(matrix->Compute(u, u), 1.0);
}

TEST(SimilarityMatrixTest, OutOfRangeIsZero) {
  const PairFunctionSimilarity base;
  const auto matrix = std::move(SimilarityMatrix::Precompute(base, 4)).ValueOrDie();
  EXPECT_DOUBLE_EQ(matrix->Compute(0, 99), 0.0);
  EXPECT_DOUBLE_EQ(matrix->Compute(-1, 2), 0.0);
}

TEST(SimilarityMatrixTest, ThreadCountDoesNotChangeResult) {
  const PairFunctionSimilarity base;
  const auto serial = std::move(SimilarityMatrix::Precompute(base, 17, 1)).ValueOrDie();
  const auto parallel =
      std::move(SimilarityMatrix::Precompute(base, 17, 4)).ValueOrDie();
  for (UserId a = 0; a < 17; ++a) {
    for (UserId b = 0; b < 17; ++b) {
      EXPECT_DOUBLE_EQ(serial->Compute(a, b), parallel->Compute(a, b));
    }
  }
}

TEST(SimilarityMatrixTest, NamePrefixed) {
  const PairFunctionSimilarity base;
  const auto matrix = std::move(SimilarityMatrix::Precompute(base, 3)).ValueOrDie();
  EXPECT_EQ(matrix->name(), "cached-pairfn");
}

}  // namespace
}  // namespace fairrec
