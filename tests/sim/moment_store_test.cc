#include "sim/moment_store.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "ratings/rating_matrix.h"
#include "sim/pairwise_engine.h"

namespace fairrec {
namespace {

PairMoments MomentsOf(std::vector<std::pair<double, double>> co_ratings) {
  PairMoments m;
  for (const auto& [ra, rb] : co_ratings) m.Add(ra, rb);
  return m;
}

TEST(MomentStoreBuilderTest, StoresBothDirectionsSorted) {
  MomentStore::Builder builder(4, {});
  builder.Add(1, 3, MomentsOf({{1, 2}}));
  builder.Add(0, 3, MomentsOf({{4, 5}, {2, 2}}));
  builder.Add(0, 1, MomentsOf({{3, 3}}));
  const MomentStore store = std::move(builder).Build();

  EXPECT_EQ(store.num_users(), 4);
  EXPECT_EQ(store.num_pairs(), 3);
  ASSERT_EQ(store.RowOf(0).size(), 2u);
  EXPECT_EQ(store.RowOf(0)[0].other, 1);
  EXPECT_EQ(store.RowOf(0)[1].other, 3);
  ASSERT_EQ(store.RowOf(3).size(), 2u);
  EXPECT_EQ(store.RowOf(3)[0].other, 0);
  EXPECT_EQ(store.RowOf(3)[1].other, 1);
  EXPECT_TRUE(store.RowOf(2).empty());

  // Both directions hold the same canonical moments.
  ASSERT_NE(store.FindPair(0, 3), nullptr);
  ASSERT_NE(store.FindPair(3, 0), nullptr);
  EXPECT_EQ(*store.FindPair(0, 3), *store.FindPair(3, 0));
  EXPECT_EQ(store.FindPair(0, 3)->n, 2);
  EXPECT_EQ(store.FindPair(0, 2), nullptr);
  EXPECT_EQ(store.FindPair(2, 0), nullptr);
}

TEST(MomentStoreBuilderTest, IgnoresEmptyMoments) {
  MomentStore::Builder builder(3, {});
  builder.Add(0, 1, PairMoments{});
  const MomentStore store = std::move(builder).Build();
  EXPECT_EQ(store.num_pairs(), 0);
  EXPECT_TRUE(store.RowOf(0).empty());
}

TEST(MomentStoreTest, EnsureNumUsersGrowsEmptyRows) {
  MomentStore::Builder builder(2, MomentStoreOptions{.tile_users = 2});
  builder.Add(0, 1, MomentsOf({{1, 1}}));
  MomentStore store = std::move(builder).Build();
  EXPECT_EQ(store.num_tiles(), 1u);

  store.EnsureNumUsers(5);
  EXPECT_EQ(store.num_users(), 5);
  EXPECT_EQ(store.num_tiles(), 3u);
  EXPECT_TRUE(store.RowOf(4).empty());
  EXPECT_EQ(store.TileUserRange(2), (std::pair<UserId, UserId>{4, 5}));
  EXPECT_EQ(store.num_pairs(), 1);
}

TEST(MomentStoreTest, ApplyPairDeltasMergesInsertsAndErases) {
  MomentStore::Builder builder(4, {});
  builder.Add(0, 1, MomentsOf({{2, 3}}));
  builder.Add(1, 2, MomentsOf({{4, 4}}));
  MomentStore store = std::move(builder).Build();

  // Merge one more co-rating into (0, 1); insert (0, 2); erase (1, 2).
  PairMoments erase_1_2;
  erase_1_2.Remove(4, 4);
  const std::vector<PairMomentsDelta> deltas = {
      {0, 1, MomentsOf({{5, 1}})},
      {0, 2, MomentsOf({{1, 2}})},
      {1, 2, erase_1_2},
  };
  store.ApplyPairDeltas(deltas);

  EXPECT_EQ(store.num_pairs(), 2);
  ASSERT_NE(store.FindPair(0, 1), nullptr);
  EXPECT_EQ(*store.FindPair(0, 1), MomentsOf({{2, 3}, {5, 1}}));
  ASSERT_NE(store.FindPair(0, 2), nullptr);
  EXPECT_EQ(*store.FindPair(0, 2), MomentsOf({{1, 2}}));
  EXPECT_EQ(store.FindPair(1, 2), nullptr);
  EXPECT_EQ(store.FindPair(2, 1), nullptr);
  EXPECT_TRUE(store.RowOf(1).size() == 1 && store.RowOf(1)[0].other == 0);
}

TEST(MomentStoreTest, TileRoundTripAndEviction) {
  MomentStore::Builder builder(6, MomentStoreOptions{.tile_users = 2});
  builder.Add(0, 1, MomentsOf({{1, 2}}));
  builder.Add(2, 5, MomentsOf({{3, 4}, {5, 5}}));
  builder.Add(3, 4, MomentsOf({{2, 2}}));
  MomentStore store = std::move(builder).Build();
  ASSERT_EQ(store.num_tiles(), 3u);
  const size_t resident_before = store.ResidentBytes();
  EXPECT_GT(resident_before, 0u);
  EXPECT_GE(store.peak_bytes(), resident_before);

  const std::vector<MomentEntry> row2(store.RowOf(2).begin(),
                                      store.RowOf(2).end());
  const std::string blob = store.SerializeTile(1);
  const size_t freed = store.EvictTile(1);
  EXPECT_GT(freed, 0u);
  EXPECT_FALSE(store.TileResident(1));
  EXPECT_EQ(store.TileBytes(1), 0u);
  EXPECT_LT(store.ResidentBytes(), resident_before);
  // Other tiles stay queryable while tile 1 is spilled.
  EXPECT_EQ(store.RowOf(0).size(), 1u);
  EXPECT_EQ(store.RowOf(4).size(), 1u);

  ASSERT_TRUE(store.RestoreTile(1, blob).ok());
  EXPECT_TRUE(store.TileResident(1));
  ASSERT_EQ(store.RowOf(2).size(), row2.size());
  EXPECT_EQ(store.RowOf(2)[0], row2[0]);
  EXPECT_EQ(store.ResidentBytes(), resident_before);
}

TEST(MomentStoreTest, RestoreRejectsMalformedBlobs) {
  MomentStore::Builder builder(2, {});
  builder.Add(0, 1, MomentsOf({{1, 1}}));
  MomentStore store = std::move(builder).Build();
  const std::string blob = store.SerializeTile(0);

  EXPECT_FALSE(store.RestoreTile(7, blob).ok());
  EXPECT_FALSE(store.RestoreTile(0, blob.substr(0, blob.size() - 3)).ok());
  EXPECT_FALSE(store.RestoreTile(0, blob + "x").ok());
  EXPECT_FALSE(store.RestoreTile(0, "").ok());
  // The well-formed blob still restores after the failed attempts.
  EXPECT_TRUE(store.RestoreTile(0, blob).ok());
  EXPECT_EQ(store.RowOf(0).size(), 1u);
}

TEST(MomentStoreTest, EngineBuildMatchesDirectAccumulation) {
  Rng rng(97531);
  RatingMatrixBuilder matrix_builder;
  matrix_builder.Reserve(30, 20);
  for (UserId u = 0; u < 30; ++u) {
    for (ItemId i = 0; i < 20; ++i) {
      if (!rng.NextBool(0.3)) continue;
      ASSERT_TRUE(
          matrix_builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5)))
              .ok());
    }
  }
  const RatingMatrix matrix = std::move(matrix_builder.Build()).ValueOrDie();
  const PairwiseSimilarityEngine engine(&matrix);
  const auto store_result =
      engine.BuildMomentStore(MomentStoreOptions{.tile_users = 7});
  ASSERT_TRUE(store_result.ok());
  const MomentStore& store = *store_result;

  // Reference: accumulate every pair's moments by a direct sorted merge of
  // the two rows, in ascending item order (the sweep's order).
  int64_t pairs = 0;
  for (UserId a = 0; a < matrix.num_users(); ++a) {
    for (UserId b = a + 1; b < matrix.num_users(); ++b) {
      PairMoments expected;
      const auto row_a = matrix.ItemsRatedBy(a);
      const auto row_b = matrix.ItemsRatedBy(b);
      size_t x = 0;
      size_t y = 0;
      while (x < row_a.size() && y < row_b.size()) {
        if (row_a[x].item < row_b[y].item) {
          ++x;
        } else if (row_b[y].item < row_a[x].item) {
          ++y;
        } else {
          expected.Add(row_a[x].value, row_b[y].value);
          ++x;
          ++y;
        }
      }
      const PairMoments* stored = store.FindPair(a, b);
      if (expected.n == 0) {
        EXPECT_EQ(stored, nullptr) << "pair (" << a << ", " << b << ")";
      } else {
        ++pairs;
        ASSERT_NE(stored, nullptr) << "pair (" << a << ", " << b << ")";
        EXPECT_EQ(*stored, expected) << "pair (" << a << ", " << b << ")";
      }
    }
  }
  EXPECT_EQ(store.num_pairs(), pairs);
}

}  // namespace
}  // namespace fairrec
