#include "sim/moment_store.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "ratings/rating_matrix.h"
#include "sim/pairwise_engine.h"

namespace fairrec {
namespace {

PairMoments MomentsOf(std::vector<std::pair<double, double>> co_ratings) {
  PairMoments m;
  for (const auto& [ra, rb] : co_ratings) m.Add(ra, rb);
  return m;
}

TEST(MomentStoreBuilderTest, StoresBothDirectionsSorted) {
  MomentStore::Builder builder(4, {});
  builder.Add(1, 3, MomentsOf({{1, 2}}));
  builder.Add(0, 3, MomentsOf({{4, 5}, {2, 2}}));
  builder.Add(0, 1, MomentsOf({{3, 3}}));
  const MomentStore store = std::move(builder).Build();

  EXPECT_EQ(store.num_users(), 4);
  EXPECT_EQ(store.num_pairs(), 3);
  ASSERT_EQ(store.RowOf(0).size(), 2u);
  EXPECT_EQ(store.RowOf(0)[0].other, 1);
  EXPECT_EQ(store.RowOf(0)[1].other, 3);
  ASSERT_EQ(store.RowOf(3).size(), 2u);
  EXPECT_EQ(store.RowOf(3)[0].other, 0);
  EXPECT_EQ(store.RowOf(3)[1].other, 1);
  EXPECT_TRUE(store.RowOf(2).empty());

  // Both directions hold the same canonical moments.
  ASSERT_NE(store.FindPair(0, 3), nullptr);
  ASSERT_NE(store.FindPair(3, 0), nullptr);
  EXPECT_EQ(*store.FindPair(0, 3), *store.FindPair(3, 0));
  EXPECT_EQ(store.FindPair(0, 3)->n, 2);
  EXPECT_EQ(store.FindPair(0, 2), nullptr);
  EXPECT_EQ(store.FindPair(2, 0), nullptr);
}

TEST(MomentStoreBuilderTest, IgnoresEmptyMoments) {
  MomentStore::Builder builder(3, {});
  builder.Add(0, 1, PairMoments{});
  const MomentStore store = std::move(builder).Build();
  EXPECT_EQ(store.num_pairs(), 0);
  EXPECT_TRUE(store.RowOf(0).empty());
}

TEST(MomentStoreTest, EnsureNumUsersGrowsEmptyRows) {
  MomentStore::Builder builder(2, MomentStoreOptions{.tile_users = 2});
  builder.Add(0, 1, MomentsOf({{1, 1}}));
  MomentStore store = std::move(builder).Build();
  EXPECT_EQ(store.num_tiles(), 1u);

  store.EnsureNumUsers(5);
  EXPECT_EQ(store.num_users(), 5);
  EXPECT_EQ(store.num_tiles(), 3u);
  EXPECT_TRUE(store.RowOf(4).empty());
  EXPECT_EQ(store.TileUserRange(2), (std::pair<UserId, UserId>{4, 5}));
  EXPECT_EQ(store.num_pairs(), 1);
}

TEST(MomentStoreTest, ApplyPairDeltasMergesInsertsAndErases) {
  MomentStore::Builder builder(4, {});
  builder.Add(0, 1, MomentsOf({{2, 3}}));
  builder.Add(1, 2, MomentsOf({{4, 4}}));
  MomentStore store = std::move(builder).Build();

  // Merge one more co-rating into (0, 1); insert (0, 2); erase (1, 2).
  PairMoments erase_1_2;
  erase_1_2.Remove(4, 4);
  const std::vector<PairMomentsDelta> deltas = {
      {0, 1, MomentsOf({{5, 1}})},
      {0, 2, MomentsOf({{1, 2}})},
      {1, 2, erase_1_2},
  };
  store.ApplyPairDeltas(deltas);

  EXPECT_EQ(store.num_pairs(), 2);
  ASSERT_NE(store.FindPair(0, 1), nullptr);
  EXPECT_EQ(*store.FindPair(0, 1), MomentsOf({{2, 3}, {5, 1}}));
  ASSERT_NE(store.FindPair(0, 2), nullptr);
  EXPECT_EQ(*store.FindPair(0, 2), MomentsOf({{1, 2}}));
  EXPECT_EQ(store.FindPair(1, 2), nullptr);
  EXPECT_EQ(store.FindPair(2, 1), nullptr);
  EXPECT_TRUE(store.RowOf(1).size() == 1 && store.RowOf(1)[0].other == 0);
}

TEST(MomentStoreTest, TileRoundTripAndEviction) {
  MomentStore::Builder builder(6, MomentStoreOptions{.tile_users = 2});
  builder.Add(0, 1, MomentsOf({{1, 2}}));
  builder.Add(2, 5, MomentsOf({{3, 4}, {5, 5}}));
  builder.Add(3, 4, MomentsOf({{2, 2}}));
  MomentStore store = std::move(builder).Build();
  ASSERT_EQ(store.num_tiles(), 3u);
  const size_t resident_before = store.ResidentBytes();
  EXPECT_GT(resident_before, 0u);
  EXPECT_GE(store.peak_bytes(), resident_before);

  const std::vector<MomentEntry> row2(store.RowOf(2).begin(),
                                      store.RowOf(2).end());
  const std::string blob = store.SerializeTile(1);
  const size_t freed = store.EvictTile(1);
  EXPECT_GT(freed, 0u);
  EXPECT_FALSE(store.TileResident(1));
  EXPECT_EQ(store.TileBytes(1), 0u);
  EXPECT_LT(store.ResidentBytes(), resident_before);
  // Other tiles stay queryable while tile 1 is spilled.
  EXPECT_EQ(store.RowOf(0).size(), 1u);
  EXPECT_EQ(store.RowOf(4).size(), 1u);

  ASSERT_TRUE(store.RestoreTile(1, blob).ok());
  EXPECT_TRUE(store.TileResident(1));
  ASSERT_EQ(store.RowOf(2).size(), row2.size());
  EXPECT_EQ(store.RowOf(2)[0], row2[0]);
  EXPECT_EQ(store.ResidentBytes(), resident_before);
}

TEST(MomentStoreTest, RestoreRejectsMalformedBlobs) {
  MomentStore::Builder builder(2, {});
  builder.Add(0, 1, MomentsOf({{1, 1}}));
  MomentStore store = std::move(builder).Build();
  const std::string blob = store.SerializeTile(0);

  // Restoring over live rows is refused outright: it would silently drop
  // any fold applied since the blob was taken.
  EXPECT_TRUE(store.RestoreTile(0, blob).IsFailedPrecondition());
  store.EvictTile(0);

  EXPECT_FALSE(store.RestoreTile(7, blob).ok());
  EXPECT_FALSE(store.RestoreTile(0, blob.substr(0, blob.size() - 3)).ok());
  EXPECT_FALSE(store.RestoreTile(0, blob + "x").ok());
  EXPECT_FALSE(store.RestoreTile(0, "").ok());
  // The well-formed blob still restores after the failed attempts.
  EXPECT_TRUE(store.RestoreTile(0, blob).ok());
  EXPECT_EQ(store.RowOf(0).size(), 1u);
}

TEST(MomentStoreTest, RestoreRejectsPoisonedValues) {
  MomentStore::Builder builder(2, {});
  builder.Add(0, 1, MomentsOf({{1, 1}, {4, 2}}));
  MomentStore store = std::move(builder).Build();
  const std::string blob = store.SerializeTile(0);
  store.EvictTile(0);

  // Entry layout after the u32 row-count and row 0's u64 length: other id
  // (i32), n (i32), then the five moment sums (f64 each).
  const size_t entry0 = sizeof(uint32_t) + sizeof(uint64_t);
  const size_t sums0 = entry0 + 2 * sizeof(int32_t);

  {  // `other` beyond the population
    std::string bad = blob;
    const int32_t other = 9;
    std::memcpy(bad.data() + entry0, &other, sizeof(other));
    EXPECT_TRUE(store.RestoreTile(0, bad).IsInvalidArgument());
  }
  {  // self-pair
    std::string bad = blob;
    const int32_t other = 0;
    std::memcpy(bad.data() + entry0, &other, sizeof(other));
    EXPECT_TRUE(store.RestoreTile(0, bad).IsInvalidArgument());
  }
  {  // zero overlap count
    std::string bad = blob;
    const int32_t n = 0;
    std::memcpy(bad.data() + entry0 + sizeof(int32_t), &n, sizeof(n));
    EXPECT_TRUE(store.RestoreTile(0, bad).IsInvalidArgument());
  }
  {  // NaN moment
    std::string bad = blob;
    const double nan = std::numeric_limits<double>::quiet_NaN();
    std::memcpy(bad.data() + sums0, &nan, sizeof(nan));
    EXPECT_TRUE(store.RestoreTile(0, bad).IsInvalidArgument());
  }
  {  // Inf moment
    std::string bad = blob;
    const double inf = std::numeric_limits<double>::infinity();
    std::memcpy(bad.data() + sums0 + sizeof(double), &inf, sizeof(inf));
    EXPECT_TRUE(store.RestoreTile(0, bad).IsInvalidArgument());
  }
  // The pristine blob still restores.
  EXPECT_TRUE(store.RestoreTile(0, blob).ok());
  ASSERT_EQ(store.RowOf(0).size(), 1u);
}

TEST(MomentStoreTest, FullArtifactRoundTrip) {
  MomentStore::Builder builder(6, MomentStoreOptions{.tile_users = 2});
  builder.Add(0, 1, MomentsOf({{1, 2}}));
  builder.Add(2, 5, MomentsOf({{3, 4}, {5, 5}}));
  builder.Add(3, 4, MomentsOf({{2, 2}}));
  MomentStore store = std::move(builder).Build();

  std::string bytes;
  store.SerializeTo(bytes);
  auto loaded = MomentStore::Deserialize(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(*loaded == store);
  EXPECT_EQ(loaded->num_pairs(), store.num_pairs());
  EXPECT_EQ(loaded->num_tiles(), store.num_tiles());

  // Any framing damage is DataLoss, never a half-loaded store.
  EXPECT_TRUE(MomentStore::Deserialize(bytes.substr(0, bytes.size() / 2))
                  .status()
                  .IsDataLoss());
  EXPECT_TRUE(MomentStore::Deserialize(bytes + "zz").status().IsDataLoss());
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x04;
  EXPECT_TRUE(MomentStore::Deserialize(flipped).status().IsDataLoss());
}

TEST(MomentStoreTest, EngineBuildMatchesDirectAccumulation) {
  Rng rng(97531);
  RatingMatrixBuilder matrix_builder;
  matrix_builder.Reserve(30, 20);
  for (UserId u = 0; u < 30; ++u) {
    for (ItemId i = 0; i < 20; ++i) {
      if (!rng.NextBool(0.3)) continue;
      ASSERT_TRUE(
          matrix_builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5)))
              .ok());
    }
  }
  const RatingMatrix matrix = std::move(matrix_builder.Build()).ValueOrDie();
  const PairwiseSimilarityEngine engine(&matrix);
  const auto store_result =
      engine.BuildMomentStore(MomentStoreOptions{.tile_users = 7});
  ASSERT_TRUE(store_result.ok());
  const MomentStore& store = *store_result;

  // Reference: accumulate every pair's moments by a direct sorted merge of
  // the two rows, in ascending item order (the sweep's order).
  int64_t pairs = 0;
  for (UserId a = 0; a < matrix.num_users(); ++a) {
    for (UserId b = a + 1; b < matrix.num_users(); ++b) {
      PairMoments expected;
      const auto row_a = matrix.ItemsRatedBy(a);
      const auto row_b = matrix.ItemsRatedBy(b);
      size_t x = 0;
      size_t y = 0;
      while (x < row_a.size() && y < row_b.size()) {
        if (row_a[x].item < row_b[y].item) {
          ++x;
        } else if (row_b[y].item < row_a[x].item) {
          ++y;
        } else {
          expected.Add(row_a[x].value, row_b[y].value);
          ++x;
          ++y;
        }
      }
      const PairMoments* stored = store.FindPair(a, b);
      if (expected.n == 0) {
        EXPECT_EQ(stored, nullptr) << "pair (" << a << ", " << b << ")";
      } else {
        ++pairs;
        ASSERT_NE(stored, nullptr) << "pair (" << a << ", " << b << ")";
        EXPECT_EQ(*stored, expected) << "pair (" << a << ", " << b << ")";
      }
    }
  }
  EXPECT_EQ(store.num_pairs(), pairs);
}

}  // namespace
}  // namespace fairrec
