#include "sim/pearson_finish_batch.h"

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "sim/pearson_finish.h"

namespace fairrec {
namespace {

/// One staged input: the pair's statistics plus the two global means the
/// caller would stage alongside.
struct Sample {
  PairMoments moments;
  double mean_a = 0.0;
  double mean_b = 0.0;
};

/// The contract is *bit* equality, not numeric closeness: compare the
/// 64-bit patterns so that +0.0 vs -0.0 (or any rounding divergence the
/// kernels could introduce) fails loudly.
::testing::AssertionResult BitEqual(double actual, double expected) {
  if (std::bit_cast<uint64_t>(actual) == std::bit_cast<uint64_t>(expected)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "bits differ: got " << actual << " (0x" << std::hex
         << std::bit_cast<uint64_t>(actual) << "), want " << expected
         << " (0x" << std::bit_cast<uint64_t>(expected) << ")";
}

/// A randomized sample cycling through every guard regime: empty pairs,
/// single co-ratings (below the default min_overlap), constant rows on
/// representable (3.0 — exact zero variance) and non-representable (3.1 —
/// cancellation noise at the epsilon guard) values, perfectly
/// anti-correlated rows (negative correlations, exercising the clamp and
/// shift), integer-rating runs, and arbitrary-real runs.
Sample RandomSample(Rng& rng, int category) {
  Sample s;
  switch (category % 7) {
    case 0:
      break;  // no co-ratings
    case 1:
      s.moments.Add(static_cast<double>(rng.UniformInt(1, 5)),
                    static_cast<double>(rng.UniformInt(1, 5)));
      break;
    case 2: {
      const double value = rng.NextBool() ? 3.0 : 3.1;
      const int32_t n = static_cast<int32_t>(rng.UniformInt(2, 9));
      for (int32_t i = 0; i < n; ++i) s.moments.Add(value, value);
      break;
    }
    case 3: {
      // r_b = 6 - r_a: exactly anti-correlated co-ratings.
      const int32_t n = static_cast<int32_t>(rng.UniformInt(2, 9));
      for (int32_t i = 0; i < n; ++i) {
        const double ra = static_cast<double>(rng.UniformInt(1, 5));
        s.moments.Add(ra, 6.0 - ra);
      }
      break;
    }
    case 4: {
      // Perfect agreement: the correlation finishes at (or clamps to) 1.
      const int32_t n = static_cast<int32_t>(rng.UniformInt(2, 9));
      for (int32_t i = 0; i < n; ++i) {
        const double ra = static_cast<double>(rng.UniformInt(1, 5));
        s.moments.Add(ra, ra);
      }
      break;
    }
    case 5: {
      const int32_t n = static_cast<int32_t>(rng.UniformInt(2, 40));
      for (int32_t i = 0; i < n; ++i) {
        s.moments.Add(static_cast<double>(rng.UniformInt(1, 5)),
                      static_cast<double>(rng.UniformInt(1, 5)));
      }
      break;
    }
    default: {
      const int32_t n = static_cast<int32_t>(rng.UniformInt(2, 12));
      for (int32_t i = 0; i < n; ++i) {
        s.moments.Add(rng.UniformReal(1.0, 5.0), rng.UniformReal(1.0, 5.0));
      }
      break;
    }
  }
  s.mean_a = rng.UniformReal(1.0, 5.0);
  s.mean_b = rng.UniformReal(1.0, 5.0);
  return s;
}

std::vector<Sample> RandomSamples(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<Sample> samples;
  samples.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    samples.push_back(RandomSample(rng, static_cast<int>(k)));
  }
  return samples;
}

using KernelFn = void (*)(const FinishBatch&, const RatingSimilarityOptions&,
                          double*);

/// Pushes `samples` through `kernel` in batches of `batch_size` (ragged
/// tails included) and asserts every lane is bit-identical to
/// FinishPearsonFromMoments on the same inputs.
void ExpectKernelMatchesScalarFinish(const std::vector<Sample>& samples,
                                     const RatingSimilarityOptions& options,
                                     KernelFn kernel, int32_t batch_size,
                                     const std::string& label) {
  ASSERT_GE(batch_size, 1);
  ASSERT_LE(batch_size, FinishBatch::kCapacity);
  FinishBatch batch;
  double out[FinishBatch::kCapacity];
  size_t flushed = 0;
  const auto flush = [&] {
    kernel(batch, options, out);
    for (int32_t i = 0; i < batch.size(); ++i) {
      const Sample& s = samples[flushed + static_cast<size_t>(i)];
      const double expected = FinishPearsonFromMoments(s.moments, s.mean_a,
                                                       s.mean_b, options);
      EXPECT_TRUE(BitEqual(out[i], expected))
          << label << " sample " << flushed + static_cast<size_t>(i)
          << " (batch size " << batch_size << ", n = " << s.moments.n
          << ", min_overlap = " << options.min_overlap
          << ", intersection_means = " << options.intersection_means
          << ", shift = " << options.shift_to_unit_interval << ")";
    }
    flushed += static_cast<size_t>(batch.size());
    batch.Clear();
  };
  for (const Sample& s : samples) {
    batch.Push(s.moments, s.mean_a, s.mean_b);
    if (batch.size() == batch_size) flush();
  }
  flush();
  ASSERT_EQ(flushed, samples.size());
}

/// Runs the full option grid (min_overlap including 0 — the engine forbids
/// it, but the kernel contract covers the raw finish semantics — both mean
/// conventions, both output ranges) against one kernel.
void RunOptionGrid(KernelFn kernel, const std::string& label) {
  const std::vector<Sample> samples = RandomSamples(20170417, 700);
  for (const int32_t min_overlap : {0, 1, 2, 4}) {
    for (const bool intersection : {false, true}) {
      for (const bool shift : {false, true}) {
        RatingSimilarityOptions options;
        options.min_overlap = min_overlap;
        options.intersection_means = intersection;
        options.shift_to_unit_interval = shift;
        ExpectKernelMatchesScalarFinish(samples, options, kernel,
                                        FinishBatch::kCapacity, label);
      }
    }
  }
}

TEST(FinishBatchTest, PushStagesLanesAndClearResets) {
  FinishBatch batch;
  EXPECT_TRUE(batch.empty());
  PairMoments m;
  m.Add(2.0, 5.0);
  m.Add(4.0, 1.0);
  EXPECT_EQ(batch.Push(m, 2.5, 3.5), 0);
  EXPECT_EQ(batch.Push(m, 1.5, 4.5), 1);
  EXPECT_EQ(batch.size(), 2);
  EXPECT_EQ(batch.moments[0], m);
  EXPECT_EQ(batch.means[1].a, 1.5);
  EXPECT_EQ(batch.means[1].b, 4.5);
  batch.Clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_FALSE(batch.full());
}

TEST(PearsonFinishBatchTest, ScalarKernelBitParityAcrossOptionGrid) {
  RunOptionGrid(internal::FinishPearsonBatchScalar, "scalar");
}

TEST(PearsonFinishBatchTest, ScalarKernelBitParityOnRaggedBatchSizes) {
  const std::vector<Sample> samples = RandomSamples(7, 300);
  RatingSimilarityOptions options;
  for (const int32_t batch_size :
       {1, 2, 3, 4, 5, 7, 63, FinishBatch::kCapacity - 1,
        FinishBatch::kCapacity}) {
    ExpectKernelMatchesScalarFinish(samples, options,
                                    internal::FinishPearsonBatchScalar,
                                    batch_size, "scalar ragged");
  }
}

#if defined(FAIRREC_ENABLE_AVX2)
TEST(PearsonFinishBatchTest, Avx2KernelBitParityAcrossOptionGrid) {
  if (!internal::FinishPearsonBatchHasAvx2()) {
    GTEST_SKIP() << "host cpuid reports no AVX2";
  }
  RunOptionGrid(internal::FinishPearsonBatchAvx2, "avx2");
}

TEST(PearsonFinishBatchTest, Avx2KernelBitParityOnRaggedBatchSizes) {
  if (!internal::FinishPearsonBatchHasAvx2()) {
    GTEST_SKIP() << "host cpuid reports no AVX2";
  }
  // Ragged sizes exercise both the 8-lane unrolled groups, the single
  // 4-lane group, and the scalar tail of the vector kernel.
  const std::vector<Sample> samples = RandomSamples(11, 300);
  RatingSimilarityOptions options;
  for (const int32_t batch_size :
       {1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 63,
        FinishBatch::kCapacity - 1, FinishBatch::kCapacity}) {
    ExpectKernelMatchesScalarFinish(samples, options,
                                    internal::FinishPearsonBatchAvx2,
                                    batch_size, "avx2 ragged");
  }
}
#endif  // FAIRREC_ENABLE_AVX2

TEST(PearsonFinishBatchTest, DispatchedKernelMatchesScalarFinish) {
  const std::vector<Sample> samples = RandomSamples(23, 300);
  RatingSimilarityOptions options;
  ExpectKernelMatchesScalarFinish(samples, options, &FinishPearsonBatch,
                                  FinishBatch::kCapacity, "dispatch");
  const std::string kernel = FinishPearsonBatchKernel();
  if (internal::FinishPearsonBatchHasAvx2()) {
    EXPECT_EQ(kernel, "avx2");
  } else {
    EXPECT_EQ(kernel, "scalar");
  }
}

TEST(PearsonFinishBatchTest, GuardedLanesFinishToExactZero) {
  RatingSimilarityOptions options;  // min_overlap 2
  FinishBatch batch;
  // Lane 0: no co-ratings. Lane 1: one co-rating (below min_overlap).
  // Lane 2: constant representable row (variance exactly 0). Lane 3:
  // constant non-representable row (cancellation noise at the epsilon
  // guard). Lane 4: a real correlation, as a positive control.
  PairMoments empty;
  PairMoments single;
  single.Add(4.0, 2.0);
  PairMoments constant_exact;
  PairMoments constant_noise;
  for (int i = 0; i < 4; ++i) {
    constant_exact.Add(3.0, 3.0);
    constant_noise.Add(3.1, 3.1);
  }
  PairMoments real;
  real.Add(1.0, 2.0);
  real.Add(4.0, 5.0);
  real.Add(2.0, 2.0);
  batch.Push(empty, 3.0, 3.0);
  batch.Push(single, 3.0, 3.0);
  batch.Push(constant_exact, 3.0, 3.0);
  // The cancellation regime needs the mean to sit on the constant value:
  // sum((3.1 - 3.1)^2) is exactly 0, but its raw-moment expansion leaves
  // rounding noise of order sum(r^2) * ulp that only the relative epsilon
  // guard maps back to 0.
  batch.Push(constant_noise, 3.1, 3.1);
  batch.Push(real, 3.0, 3.0);
  double out[FinishBatch::kCapacity];
  FinishPearsonBatch(batch, options, out);
  EXPECT_TRUE(BitEqual(out[0], 0.0));
  EXPECT_TRUE(BitEqual(out[1], 0.0));
  EXPECT_TRUE(BitEqual(out[2], 0.0));
  EXPECT_TRUE(BitEqual(out[3], 0.0));
  EXPECT_NE(out[4], 0.0);
  EXPECT_TRUE(BitEqual(
      out[4], FinishPearsonFromMoments(real, 3.0, 3.0, options)));
}

TEST(PearsonFinishBatchTest, NegativeCorrelationShiftsIntoUnitInterval) {
  RatingSimilarityOptions options;
  options.shift_to_unit_interval = true;
  // Exactly anti-correlated co-ratings: r = -1, shifted to 0.
  PairMoments anti;
  anti.Add(1.0, 5.0);
  anti.Add(5.0, 1.0);
  anti.Add(3.0, 3.0);
  FinishBatch batch;
  batch.Push(anti, 3.0, 3.0);
  double out[FinishBatch::kCapacity];
  FinishPearsonBatch(batch, options, out);
  EXPECT_TRUE(BitEqual(
      out[0], FinishPearsonFromMoments(anti, 3.0, 3.0, options)));
  EXPECT_GE(out[0], 0.0);
  EXPECT_LT(out[0], 0.5);  // negative correlations land below the midpoint
}

}  // namespace
}  // namespace fairrec
