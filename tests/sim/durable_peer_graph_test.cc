#include "sim/durable_peer_graph.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "common/blob_io.h"
#include "common/failpoint.h"
#include "ratings/rating_delta.h"
#include "ratings/rating_matrix.h"

namespace fairrec {
namespace {

/// Integer ratings throughout: the patch/rebuild parity contract is exact on
/// integer scales, which is what makes recovery byte-identical even though
/// the replay's planner choices (wall-clock calibrated) may differ from the
/// original run's.
RatingMatrix SeedMatrix() {
  RatingMatrixBuilder builder;
  EXPECT_TRUE(builder
                  .AddAll({{0, 0, 5}, {0, 1, 3}, {0, 2, 1},
                           {1, 0, 5}, {1, 1, 3}, {1, 2, 1},
                           {2, 0, 1}, {2, 1, 3}, {2, 2, 5},
                           {3, 0, 2}, {3, 1, 4}, {3, 3, 4}})
                  .ok());
  return std::move(builder.Build()).ValueOrDie();
}

IncrementalPeerGraphOptions Options() {
  IncrementalPeerGraphOptions options;
  options.peers.delta = 0.1;
  options.peers.max_peers_per_user = 8;
  return options;
}

/// A deterministic stream of integer-rating batches.
std::vector<RatingDelta> DeltaStream(int count) {
  std::vector<RatingDelta> stream;
  for (int i = 0; i < count; ++i) {
    RatingDelta delta;
    EXPECT_TRUE(delta.Add(i % 5, (i * 3) % 4, 1 + (i * 7) % 5).ok());
    EXPECT_TRUE(delta.Add((i + 2) % 5, (i + 1) % 4, 1 + (i * 2) % 5).ok());
    stream.push_back(std::move(delta));
  }
  return stream;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/fairrec_durable_" + name;
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  EXPECT_TRUE(RemovePath(DurablePeerGraph::CheckpointPathOf(dir)).ok());
  EXPECT_TRUE(RemovePath(DurablePeerGraph::JournalPathOf(dir)).ok());
  return dir;
}

DurablePeerGraph OpenOrDie(const std::string& dir) {
  auto opened = DurablePeerGraph::Open(dir, SeedMatrix(), Options());
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(opened).ValueOrDie();
}

/// Full-state equality against a reference graph: matrix, moment store, and
/// peer index, all through their exact (bitwise on doubles) operator==.
void ExpectSameState(const DurablePeerGraph& got,
                     const IncrementalPeerGraph& want) {
  EXPECT_TRUE(got.graph().matrix() == want.matrix());
  EXPECT_TRUE(got.graph().store() == want.store());
  EXPECT_TRUE(*got.graph().index() == *want.index());
}

/// The uninterrupted twin: the same seed and delta prefix with no
/// durability layer and no crash in sight.
IncrementalPeerGraph TwinAfter(const std::vector<RatingDelta>& stream,
                               size_t count) {
  auto twin = IncrementalPeerGraph::Build(SeedMatrix(), Options());
  EXPECT_TRUE(twin.ok()) << twin.status().ToString();
  for (size_t i = 0; i < count; ++i) {
    const auto stats = twin->ApplyDelta(stream[i]);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  }
  return std::move(twin).ValueOrDie();
}

TEST(DurablePeerGraphTest, SeedOpenWritesTheInitialCheckpoint) {
  const std::string dir = FreshDir("seed");
  const DurablePeerGraph durable = OpenOrDie(dir);
  EXPECT_FALSE(durable.recovery_info().recovered);
  EXPECT_EQ(durable.applied_seq(), 0u);
  EXPECT_EQ(durable.journal_bytes(), 0u);
  // The checkpoint is already on disk: a crash right now recovers.
  EXPECT_TRUE(PathExists(DurablePeerGraph::CheckpointPathOf(dir)));
}

TEST(DurablePeerGraphTest, RecoveryReplaysTheJournalTail) {
  const std::string dir = FreshDir("replay");
  const std::vector<RatingDelta> stream = DeltaStream(6);
  {
    DurablePeerGraph durable = OpenOrDie(dir);
    for (const RatingDelta& delta : stream) {
      const auto stats = durable.ApplyDelta(delta);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    }
    EXPECT_EQ(durable.applied_seq(), 6u);
    EXPECT_GT(durable.journal_bytes(), 0u);
    // The durable object goes out of scope un-checkpointed: the crash.
  }
  const DurablePeerGraph recovered = OpenOrDie(dir);
  EXPECT_TRUE(recovered.recovery_info().recovered);
  EXPECT_EQ(recovered.recovery_info().checkpoint_seq, 0u);
  EXPECT_EQ(recovered.recovery_info().replayed_batches, 6);
  EXPECT_EQ(recovered.recovery_info().skipped_batches, 0);
  EXPECT_EQ(recovered.recovery_info().torn_tail_bytes, 0u);
  EXPECT_EQ(recovered.applied_seq(), 6u);
  ExpectSameState(recovered, TwinAfter(stream, 6));
}

TEST(DurablePeerGraphTest, CheckpointResetsRecoveryToTheSnapshot) {
  const std::string dir = FreshDir("checkpoint");
  const std::vector<RatingDelta> stream = DeltaStream(5);
  {
    DurablePeerGraph durable = OpenOrDie(dir);
    for (size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(durable.ApplyDelta(stream[i]).ok());
    }
    ASSERT_TRUE(durable.Checkpoint().ok());
    EXPECT_EQ(durable.journal_bytes(), 0u);
    for (size_t i = 3; i < 5; ++i) {
      ASSERT_TRUE(durable.ApplyDelta(stream[i]).ok());
    }
  }
  const DurablePeerGraph recovered = OpenOrDie(dir);
  EXPECT_EQ(recovered.recovery_info().checkpoint_seq, 3u);
  EXPECT_EQ(recovered.recovery_info().replayed_batches, 2);
  EXPECT_EQ(recovered.recovery_info().skipped_batches, 0);
  EXPECT_EQ(recovered.applied_seq(), 5u);
  ExpectSameState(recovered, TwinAfter(stream, 5));
  // And the sequence continues from where the stream left off.
  DurablePeerGraph continued = OpenOrDie(dir);
  RatingDelta next;
  ASSERT_TRUE(next.Add(4, 3, 2).ok());
  ASSERT_TRUE(continued.ApplyDelta(next).ok());
  EXPECT_EQ(continued.applied_seq(), 6u);
}

TEST(DurablePeerGraphTest, CorruptedCheckpointIsRefusedNotMisread) {
  const std::string dir = FreshDir("corrupt");
  { OpenOrDie(dir); }
  const std::string path = DurablePeerGraph::CheckpointPathOf(dir);
  // Flip one byte mid-file; every layer above must surface DataLoss.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(bytes.size(), 64u);
  bytes[40] = static_cast<char>(bytes[40] ^ 0x08);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }
  const auto reopened = DurablePeerGraph::Open(dir, SeedMatrix(), Options());
  EXPECT_TRUE(reopened.status().IsDataLoss()) << reopened.status().ToString();
}

#if FAIRREC_FAILPOINTS_ENABLED

TEST(DurablePeerGraphTest, CrashAfterJournalAppendReplaysTheBatch) {
  const std::string dir = FreshDir("after_journal");
  const std::vector<RatingDelta> stream = DeltaStream(2);
  failpoint::Reset();
  {
    DurablePeerGraph durable = OpenOrDie(dir);
    ASSERT_TRUE(durable.ApplyDelta(stream[0]).ok());
    failpoint::Arm(kFailpointDurableApplyAfterJournal);
    const auto crashed = durable.ApplyDelta(stream[1]);
    ASSERT_TRUE(failpoint::IsInjectedCrash(crashed.status()));
    // Journaled but unapplied; the caller was never told it succeeded.
    EXPECT_EQ(durable.applied_seq(), 1u);
  }
  const DurablePeerGraph recovered = OpenOrDie(dir);
  EXPECT_EQ(recovered.recovery_info().replayed_batches, 2);
  EXPECT_EQ(recovered.applied_seq(), 2u);
  ExpectSameState(recovered, TwinAfter(stream, 2));
  failpoint::Reset();
}

TEST(DurablePeerGraphTest, CrashBetweenCheckpointAndTruncateSkipsBySeq) {
  const std::string dir = FreshDir("before_truncate");
  const std::vector<RatingDelta> stream = DeltaStream(3);
  failpoint::Reset();
  {
    DurablePeerGraph durable = OpenOrDie(dir);
    for (const RatingDelta& delta : stream) {
      ASSERT_TRUE(durable.ApplyDelta(delta).ok());
    }
    failpoint::Arm(kFailpointDurableCheckpointBeforeTruncate);
    const Status crashed = durable.Checkpoint();
    ASSERT_TRUE(failpoint::IsInjectedCrash(crashed));
    // The new checkpoint is durable; the journal still holds seqs 1..3.
    EXPECT_GT(durable.journal_bytes(), 0u);
  }
  const DurablePeerGraph recovered = OpenOrDie(dir);
  EXPECT_EQ(recovered.recovery_info().checkpoint_seq, 3u);
  EXPECT_EQ(recovered.recovery_info().skipped_batches, 3);
  EXPECT_EQ(recovered.recovery_info().replayed_batches, 0);
  EXPECT_EQ(recovered.applied_seq(), 3u);
  ExpectSameState(recovered, TwinAfter(stream, 3));
  failpoint::Reset();
}

#endif  // FAIRREC_FAILPOINTS_ENABLED

}  // namespace
}  // namespace fairrec
