#include "sim/incremental_peer_graph.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "ratings/rating_delta.h"
#include "ratings/rating_matrix.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"

namespace fairrec {
namespace {

/// Byte-identical index comparison: same population, same peers, same
/// similarities (exact double equality), same order.
void ExpectIdenticalIndex(const PeerIndex& actual, const PeerIndex& expected) {
  ASSERT_EQ(actual.num_users(), expected.num_users());
  ASSERT_EQ(actual.num_entries(), expected.num_entries());
  for (UserId u = 0; u < expected.num_users(); ++u) {
    const auto got = actual.PeersOf(u);
    const auto want = expected.PeersOf(u);
    ASSERT_EQ(got.size(), want.size()) << "user " << u;
    for (size_t k = 0; k < want.size(); ++k) {
      EXPECT_EQ(got[k], want[k]) << "user " << u << " entry " << k;
    }
  }
}

/// The from-scratch reference on the post-delta corpus.
PeerIndex RebuildFromScratch(const RatingMatrix& matrix,
                             const IncrementalPeerGraphOptions& options) {
  const PairwiseSimilarityEngine engine(&matrix, options.similarity,
                                        options.engine);
  return std::move(engine.BuildPeerIndex(options.peers)).ValueOrDie();
}

/// The incremental store must also stay byte-identical to a fresh sweep —
/// index parity alone could mask moment corruption hidden below delta.
void ExpectStoreMatchesFreshSweep(const IncrementalPeerGraph& graph) {
  const PairwiseSimilarityEngine engine(&graph.matrix(),
                                        graph.options().similarity,
                                        graph.options().engine);
  const MomentStore fresh =
      std::move(engine.BuildMomentStore(graph.options().store)).ValueOrDie();
  ASSERT_EQ(graph.store().num_users(), fresh.num_users());
  ASSERT_EQ(graph.store().num_pairs(), fresh.num_pairs());
  for (UserId u = 0; u < fresh.num_users(); ++u) {
    const auto got = graph.store().RowOf(u);
    const auto want = fresh.RowOf(u);
    ASSERT_EQ(got.size(), want.size()) << "user " << u;
    for (size_t k = 0; k < want.size(); ++k) {
      EXPECT_EQ(got[k], want[k]) << "user " << u << " entry " << k;
    }
  }
}

RatingMatrix MatrixFromTriples(const std::vector<RatingTriple>& triples) {
  RatingMatrixBuilder builder;
  EXPECT_TRUE(builder.AddAll(triples).ok());
  return std::move(builder.Build()).ValueOrDie();
}

IncrementalPeerGraph BuildGraph(const RatingMatrix& matrix,
                                IncrementalPeerGraphOptions options) {
  auto result = IncrementalPeerGraph::Build(matrix, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

TEST(IncrementalPeerGraphTest, BuildRejectsNonPositiveDelta) {
  const RatingMatrix matrix = MatrixFromTriples({{0, 0, 3}, {1, 0, 4}});
  IncrementalPeerGraphOptions options;
  options.peers.delta = 0.0;
  EXPECT_FALSE(IncrementalPeerGraph::Build(matrix, options).ok());
  options.peers.delta = -0.5;
  EXPECT_FALSE(IncrementalPeerGraph::Build(matrix, options).ok());
}

TEST(IncrementalPeerGraphTest, SeedMatchesFullBuild) {
  const RatingMatrix matrix = MatrixFromTriples({
      {0, 0, 1}, {0, 1, 2}, {0, 2, 3},
      {1, 0, 1}, {1, 1, 2}, {1, 2, 3},
      {2, 0, 3}, {2, 1, 2}, {2, 2, 1},
  });
  IncrementalPeerGraphOptions options;
  options.peers.delta = 0.5;
  const IncrementalPeerGraph graph = BuildGraph(matrix, options);
  ExpectIdenticalIndex(*graph.index(), RebuildFromScratch(matrix, options));
  EXPECT_GT(graph.store().num_pairs(), 0);
}

TEST(IncrementalPeerGraphTest, DeltaDroppingPairBelowThresholdEvictsIt) {
  // Users 0 and 1 co-rate items 0..2 in perfect agreement; nothing else.
  const RatingMatrix matrix = MatrixFromTriples({
      {0, 0, 1}, {0, 1, 2}, {0, 2, 3},
      {1, 0, 1}, {1, 1, 2}, {1, 2, 3},
  });
  IncrementalPeerGraphOptions options;
  options.peers.delta = 0.5;
  IncrementalPeerGraph graph = BuildGraph(matrix, options);
  ASSERT_EQ(graph.index()->PeersOf(0).size(), 1u);
  ASSERT_EQ(graph.index()->PeersOf(0)[0].user, 1);

  // Updating user 1 to perfect disagreement sends the correlation to -1,
  // far below delta: both directions of the pair must leave the index.
  RatingDelta delta;
  ASSERT_TRUE(delta.Add(1, 0, 3).ok());
  ASSERT_TRUE(delta.Add(1, 2, 1).ok());
  const auto stats = graph.ApplyDelta(delta);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->changed_pairs, 1);

  EXPECT_TRUE(graph.index()->PeersOf(0).empty());
  EXPECT_TRUE(graph.index()->PeersOf(1).empty());
  ExpectIdenticalIndex(*graph.index(),
                       RebuildFromScratch(graph.matrix(), options));
  ExpectStoreMatchesFreshSweep(graph);
}

TEST(IncrementalPeerGraphTest, BrandNewUserWithZeroCoRatings) {
  const RatingMatrix matrix = MatrixFromTriples({
      {0, 0, 1}, {0, 1, 2},
      {1, 0, 1}, {1, 1, 2},
  });
  IncrementalPeerGraphOptions options;
  options.peers.delta = 0.3;
  IncrementalPeerGraph graph = BuildGraph(matrix, options);

  // User 5 arrives rating only a brand-new item: no co-ratings with anyone.
  RatingDelta delta;
  ASSERT_TRUE(delta.Add(5, 7, 4).ok());
  const auto stats = graph.ApplyDelta(delta);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->changed_pairs, 0);
  EXPECT_EQ(stats->rows_refinished, 0);

  EXPECT_EQ(graph.index()->num_users(), 6);
  EXPECT_TRUE(graph.index()->PeersOf(5).empty());
  // The pre-existing peers are untouched.
  ASSERT_EQ(graph.index()->PeersOf(0).size(), 1u);
  ExpectIdenticalIndex(*graph.index(),
                       RebuildFromScratch(graph.matrix(), options));
  ExpectStoreMatchesFreshSweep(graph);
}

TEST(IncrementalPeerGraphTest, UpdatedRatingRefinishesExactly) {
  // The updated-not-appended case: the superseded co-rating must be removed
  // from the pair's statistics, not merely overlaid.
  const RatingMatrix matrix = MatrixFromTriples({
      {0, 0, 1}, {0, 1, 2}, {0, 2, 3}, {0, 3, 4},
      {1, 0, 2}, {1, 1, 2}, {1, 2, 3}, {1, 3, 5},
  });
  IncrementalPeerGraphOptions options;
  options.peers.delta = 0.1;
  IncrementalPeerGraph graph = BuildGraph(matrix, options);
  const double before = graph.index()->PeersOf(0)[0].similarity;

  RatingDelta delta;
  ASSERT_TRUE(delta.Add(1, 0, 1).ok());  // 2 -> 1 on a co-rated item
  ASSERT_TRUE(graph.ApplyDelta(delta).ok());

  ASSERT_EQ(graph.index()->PeersOf(0).size(), 1u);
  EXPECT_NE(graph.index()->PeersOf(0)[0].similarity, before);
  ExpectIdenticalIndex(*graph.index(),
                       RebuildFromScratch(graph.matrix(), options));
  ExpectStoreMatchesFreshSweep(graph);
}

TEST(IncrementalPeerGraphTest, CappedRowRecoversEvictedCandidate) {
  // cap = 1: user 0's list holds only user 1 (ties break to the smaller
  // id); user 2, equally similar, was evicted at build time. When the
  // delta demotes pair (0, 1), the patched row must surface user 2 — only
  // the moment store can name it.
  const RatingMatrix matrix = MatrixFromTriples({
      {0, 0, 1}, {0, 1, 2}, {0, 2, 1}, {0, 3, 2},
      {1, 0, 1}, {1, 1, 2},
      {2, 2, 1}, {2, 3, 2},
  });
  IncrementalPeerGraphOptions options;
  options.similarity.intersection_means = true;
  options.peers.delta = 0.5;
  options.peers.max_peers_per_user = 1;
  IncrementalPeerGraph graph = BuildGraph(matrix, options);
  ASSERT_EQ(graph.index()->PeersOf(0).size(), 1u);
  ASSERT_EQ(graph.index()->PeersOf(0)[0].user, 1);

  RatingDelta delta;
  ASSERT_TRUE(delta.Add(1, 1, 1).ok());  // kills the (0, 1) correlation
  const auto stats = graph.ApplyDelta(delta);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->rows_refinished, 1);

  ASSERT_EQ(graph.index()->PeersOf(0).size(), 1u);
  EXPECT_EQ(graph.index()->PeersOf(0)[0].user, 2);
  ExpectIdenticalIndex(*graph.index(),
                       RebuildFromScratch(graph.matrix(), options));
  ExpectStoreMatchesFreshSweep(graph);
}

TEST(IncrementalPeerGraphTest, SnapshotSurvivesSwap) {
  const RatingMatrix matrix = MatrixFromTriples({
      {0, 0, 1}, {0, 1, 2}, {0, 2, 3},
      {1, 0, 1}, {1, 1, 2}, {1, 2, 3},
  });
  IncrementalPeerGraphOptions options;
  options.peers.delta = 0.5;
  IncrementalPeerGraph graph = BuildGraph(matrix, options);
  const std::shared_ptr<const PeerIndex> snapshot = graph.index();
  ASSERT_EQ(snapshot->PeersOf(0).size(), 1u);

  RatingDelta delta;
  ASSERT_TRUE(delta.Add(1, 0, 3).ok());
  ASSERT_TRUE(delta.Add(1, 2, 1).ok());
  ASSERT_TRUE(graph.ApplyDelta(delta).ok());

  // In-flight readers keep the pre-delta view; new fetches see the patch.
  EXPECT_EQ(snapshot->PeersOf(0).size(), 1u);
  EXPECT_NE(graph.index().get(), snapshot.get());
  EXPECT_TRUE(graph.index()->PeersOf(0).empty());
}

TEST(IncrementalPeerGraphTest, EmptyDeltaIsANoOp) {
  const RatingMatrix matrix = MatrixFromTriples({{0, 0, 3}, {1, 0, 4}});
  IncrementalPeerGraphOptions options;
  IncrementalPeerGraph graph = BuildGraph(matrix, options);
  const std::shared_ptr<const PeerIndex> before = graph.index();
  const auto stats = graph.ApplyDelta(RatingDelta());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_upserts, 0);
  EXPECT_EQ(graph.index().get(), before.get());
}

/// The workhorse: random corpora, random delta batches (appends, updates,
/// brand-new users), every cap / means combination — after every apply the
/// incremental index must be byte-identical to the from-scratch build and
/// the store to a fresh sweep. Integer ratings keep the moments exact, so
/// "identical" really is bitwise (see the class parity contract).
struct ParityCase {
  int32_t max_peers = 0;
  bool intersection_means = false;
  double delta = 0.1;
};

class IncrementalParityTest : public ::testing::TestWithParam<ParityCase> {};

TEST_P(IncrementalParityTest, SequentialDeltasMatchFullRebuild) {
  const ParityCase param = GetParam();
  Rng rng(0xfa15ec0de + static_cast<uint64_t>(param.max_peers) * 131 +
          (param.intersection_means ? 7 : 0));

  RatingMatrixBuilder builder;
  const int32_t seed_users = 50;
  const int32_t seed_items = 24;
  builder.Reserve(seed_users, seed_items);
  for (UserId u = 0; u < seed_users; ++u) {
    for (ItemId i = 0; i < seed_items; ++i) {
      if (!rng.NextBool(0.25)) continue;
      ASSERT_TRUE(
          builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5))).ok());
    }
  }
  const RatingMatrix seed = std::move(builder.Build()).ValueOrDie();

  IncrementalPeerGraphOptions options;
  options.similarity.intersection_means = param.intersection_means;
  options.peers.delta = param.delta;
  options.peers.max_peers_per_user = param.max_peers;
  options.store.tile_users = 16;  // several tiles at this population
  IncrementalPeerGraph graph = BuildGraph(seed, options);
  ExpectIdenticalIndex(*graph.index(), RebuildFromScratch(seed, options));

  int32_t next_new_user = seed_users;
  for (int round = 0; round < 6; ++round) {
    RatingDelta delta;
    const int batch = static_cast<int>(rng.UniformInt(1, 20));
    for (int k = 0; k < batch; ++k) {
      const double kind = rng.NextDouble();
      UserId user;
      if (kind < 0.2) {
        user = next_new_user++;  // brand-new user (some get co-ratings)
      } else {
        user = static_cast<UserId>(
            rng.UniformInt(0, graph.matrix().num_users() - 1));
      }
      // ~Half of existing-user upserts hit already-rated cells (updates).
      ItemId item = static_cast<ItemId>(rng.UniformInt(0, seed_items - 1));
      if (kind >= 0.2 && kind < 0.6 && user < graph.matrix().num_users()) {
        const auto row = graph.matrix().ItemsRatedBy(user);
        if (!row.empty()) {
          item = row[static_cast<size_t>(rng.UniformInt(
                         0, static_cast<int64_t>(row.size()) - 1))]
                     .item;
        }
      }
      ASSERT_TRUE(
          delta.Add(user, item, static_cast<Rating>(rng.UniformInt(1, 5)))
              .ok());
    }
    const auto stats = graph.ApplyDelta(delta);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ExpectIdenticalIndex(*graph.index(),
                         RebuildFromScratch(graph.matrix(), options));
    ExpectStoreMatchesFreshSweep(graph);
  }
}

/// A corpus past the planner's minimum-work floor: ~500 users x 40 items at
/// ~50% density puts the estimated rebuild cost (sum of per-column
/// co-rating pairs) above planner_min_rebuild_cost, so the batch-size-aware
/// planner actually engages.
RatingMatrix PlannerScaleCorpus() {
  Rng rng(99);
  std::vector<RatingTriple> triples;
  for (UserId u = 0; u < 500; ++u) {
    for (ItemId i = 0; i < 40; ++i) {
      if (!rng.NextBool(0.5)) continue;
      triples.push_back({u, i, static_cast<Rating>(rng.UniformInt(1, 5))});
    }
  }
  return MatrixFromTriples(triples);
}

/// One upsert per item of the universe — the whole-corpus-touching batch
/// shape whose patch cost exceeds a from-scratch sweep.
RatingDelta WholeCorpusDelta(const RatingMatrix& matrix) {
  RatingDelta delta;
  for (ItemId i = 0; i < matrix.num_items(); ++i) {
    EXPECT_TRUE(delta
                    .Add(static_cast<UserId>(i % 7), i,
                         static_cast<Rating>(1 + (i % 5)))
                    .ok());
  }
  return delta;
}

TEST(IncrementalPeerGraphTest, PlannerFallsBackToFullRebuildPastCrossover) {
  const RatingMatrix matrix = PlannerScaleCorpus();
  IncrementalPeerGraphOptions options;
  options.peers.delta = 0.1;
  options.peers.max_peers_per_user = 8;
  // Pinned rather than defaulted, and with self-tuning off, so the test
  // stays a deterministic crossover test no matter what this machine's
  // measured exchange rate is.
  options.patch_pair_cost = 300.0;
  options.calibrate_planner = false;
  options.rebuild_fallback_ratio = 1.0;
  IncrementalPeerGraph graph = BuildGraph(matrix, options);

  // A single-cell batch sits far below the crossover: the patch path runs.
  RatingDelta small;
  ASSERT_TRUE(small.Add(0, 0, 5).ok());
  const auto small_stats = graph.ApplyDelta(small);
  ASSERT_TRUE(small_stats.ok()) << small_stats.status().ToString();
  EXPECT_FALSE(small_stats->used_full_rebuild);
  EXPECT_GT(small_stats->estimated_rebuild_cost, 0.0);
  EXPECT_LT(small_stats->estimated_patch_cost,
            small_stats->estimated_rebuild_cost);
  ExpectIdenticalIndex(*graph.index(),
                       RebuildFromScratch(graph.matrix(), options));

  // A batch touching every item column costs more to patch than to
  // re-sweep: the planner must fall back, with zero patch-side work, and
  // the rebuilt artifacts must match the from-scratch reference (index and
  // store alike).
  const RatingDelta big = WholeCorpusDelta(graph.matrix());
  const auto big_stats = graph.ApplyDelta(big);
  ASSERT_TRUE(big_stats.ok()) << big_stats.status().ToString();
  EXPECT_TRUE(big_stats->used_full_rebuild);
  EXPECT_GT(big_stats->estimated_patch_cost,
            big_stats->estimated_rebuild_cost);
  EXPECT_EQ(big_stats->rows_patched, 0);
  EXPECT_EQ(big_stats->rows_refinished, 0);
  EXPECT_EQ(big_stats->changed_pairs, 0);
  ExpectIdenticalIndex(*graph.index(),
                       RebuildFromScratch(graph.matrix(), options));
  ExpectStoreMatchesFreshSweep(graph);

  // The graph keeps absorbing deltas through the patch path afterwards.
  RatingDelta after;
  ASSERT_TRUE(after.Add(1, 1, 4).ok());
  const auto after_stats = graph.ApplyDelta(after);
  ASSERT_TRUE(after_stats.ok()) << after_stats.status().ToString();
  EXPECT_FALSE(after_stats->used_full_rebuild);
  ExpectIdenticalIndex(*graph.index(),
                       RebuildFromScratch(graph.matrix(), options));
}

TEST(IncrementalPeerGraphTest, PlannerDisabledAlwaysPatches) {
  const RatingMatrix matrix = PlannerScaleCorpus();
  IncrementalPeerGraphOptions options;
  options.peers.delta = 0.1;
  options.patch_pair_cost = 300.0;
  options.rebuild_fallback_ratio = 0.0;  // planning off
  IncrementalPeerGraph graph = BuildGraph(matrix, options);
  const RatingDelta big = WholeCorpusDelta(graph.matrix());
  const auto stats = graph.ApplyDelta(big);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats->used_full_rebuild);
  EXPECT_GT(stats->changed_pairs, 0);
  // The patch path must land on the same artifacts the planner's rebuild
  // would have produced.
  ExpectIdenticalIndex(*graph.index(),
                       RebuildFromScratch(graph.matrix(), options));
  ExpectStoreMatchesFreshSweep(graph);
}

TEST(IncrementalPeerGraphTest, CalibratedCostModelFlipsThePlanner) {
  const RatingMatrix matrix = PlannerScaleCorpus();
  IncrementalPeerGraphOptions options;
  options.peers.delta = 0.1;
  options.peers.max_peers_per_user = 8;
  options.patch_pair_cost = 300.0;  // the cold-start prior
  options.rebuild_fallback_ratio = 1.0;
  ASSERT_TRUE(options.calibrate_planner);  // the default under test
  IncrementalPeerGraph graph = BuildGraph(matrix, options);

  // The seeding Build primed only the rebuild side; until a patch has been
  // timed too, the planner must run on the prior, verbatim.
  EXPECT_FALSE(graph.cost_model().calibrated());
  EXPECT_GT(graph.cost_model().rebuild_samples(), 0);
  EXPECT_EQ(graph.cost_model().pair_cost(), 300.0);
  RatingDelta first;
  ASSERT_TRUE(first.Add(0, 0, 5).ok());
  const auto first_stats = graph.ApplyDelta(first);
  ASSERT_TRUE(first_stats.ok()) << first_stats.status().ToString();
  EXPECT_FALSE(first_stats->used_full_rebuild);
  EXPECT_EQ(first_stats->patch_pair_cost_used, 300.0);
  // That patch closed the loop: both sides observed.
  EXPECT_TRUE(graph.cost_model().calibrated());

  // Teach the model that patching is ruinously slow on "this machine"
  // (injected observations, so the flip is deterministic, not wall-clock
  // luck): 1000 s per unit pins the ratio at the upper clamp on any
  // plausible rebuild timing, and even a one-cell batch must now fall back
  // to a rebuild.
  graph.cost_model().ObservePatch(1.0, 1.0e3);
  RatingDelta tiny;
  ASSERT_TRUE(tiny.Add(1, 1, 4).ok());
  const auto flipped = graph.ApplyDelta(tiny);
  ASSERT_TRUE(flipped.ok()) << flipped.status().ToString();
  EXPECT_TRUE(flipped->used_full_rebuild);
  EXPECT_EQ(flipped->patch_pair_cost_used, 1.0e7);  // the upper clamp
  ExpectIdenticalIndex(*graph.index(),
                       RebuildFromScratch(graph.matrix(), options));

  // Teach it the opposite — patching is nearly free — and the planner must
  // patch even the whole-corpus batch the pinned-constant test rebuilds.
  // Folded repeatedly because the average decays the poison above at
  // (1 - alpha)^k; 120 folds push it far past the lower clamp.
  for (int k = 0; k < 120; ++k) {
    graph.cost_model().ObservePatch(1.0e9, 1.0e-6);
  }
  const RatingDelta big = WholeCorpusDelta(graph.matrix());
  const auto patched = graph.ApplyDelta(big);
  ASSERT_TRUE(patched.ok()) << patched.status().ToString();
  EXPECT_FALSE(patched->used_full_rebuild);
  EXPECT_EQ(patched->patch_pair_cost_used, 1.0e-2);  // the lower clamp
  ExpectIdenticalIndex(*graph.index(),
                       RebuildFromScratch(graph.matrix(), options));
  ExpectStoreMatchesFreshSweep(graph);
}

INSTANTIATE_TEST_SUITE_P(
    CapsAndMeans, IncrementalParityTest,
    ::testing::Values(ParityCase{0, false, 0.1}, ParityCase{0, true, 0.1},
                      ParityCase{3, false, 0.1}, ParityCase{3, true, 0.1},
                      ParityCase{8, false, 0.05}, ParityCase{8, true, 0.3}),
    [](const ::testing::TestParamInfo<ParityCase>& info) {
      return "cap" + std::to_string(info.param.max_peers) +
             (info.param.intersection_means ? "_intersection" : "_global");
    });

}  // namespace
}  // namespace fairrec
