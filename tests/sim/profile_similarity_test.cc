#include "sim/profile_similarity.h"

#include <gtest/gtest.h>

#include "ontology/snomed_generator.h"

namespace fairrec {
namespace {

struct Fixture {
  Ontology ontology;
  ProfileStore store;

  Fixture() {
    ontology = std::move(BuildPaperFixtureOntology()).ValueOrDie();
    Add(0, "Acute bronchitis", "Ramipril 10 MG Oral Capsule", Gender::kFemale, 40);
    Add(1, "Chest pain", "Niacin 500 MG Extended Release Tablet", Gender::kMale, 53);
    Add(2, "Tracheobronchitis", "Ramipril 10 MG Oral Capsule", Gender::kMale, 34);
  }

  void Add(UserId u, const std::string& problem, const std::string& med,
           Gender gender, int age) {
    PatientProfile p;
    p.user = u;
    p.problems = {ontology.FindByName(problem)};
    p.medications = {med};
    p.gender = gender;
    p.age = age;
    EXPECT_TRUE(store.Add(p).ok());
  }
};

TEST(ProfileSimilarityTest, EmptyStoreFails) {
  const Ontology o = std::move(BuildPaperFixtureOntology()).ValueOrDie();
  const ProfileStore empty;
  EXPECT_TRUE(
      ProfileSimilarity::Create(empty, o).status().IsInvalidArgument());
}

TEST(ProfileSimilarityTest, SharedMedicationBeatsDisjointProfiles) {
  const Fixture f;
  const auto sim =
      std::move(ProfileSimilarity::Create(f.store, f.ontology)).ValueOrDie();
  // Patients 0 and 2 share the Ramipril line and the bronchitis wording;
  // patient 1 shares neither.
  EXPECT_GT(sim->Compute(0, 2), sim->Compute(0, 1));
}

TEST(ProfileSimilarityTest, SymmetricAndInUnitRange) {
  const Fixture f;
  const auto sim =
      std::move(ProfileSimilarity::Create(f.store, f.ontology)).ValueOrDie();
  for (UserId a = 0; a < 3; ++a) {
    for (UserId b = 0; b < 3; ++b) {
      const double s = sim->Compute(a, b);
      EXPECT_DOUBLE_EQ(s, sim->Compute(b, a));
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0 + 1e-12);
    }
  }
}

TEST(ProfileSimilarityTest, IdenticalProfilesScoreOne) {
  Fixture f;
  // User 3 duplicates user 0's profile exactly.
  f.Add(3, "Acute bronchitis", "Ramipril 10 MG Oral Capsule", Gender::kFemale, 40);
  const auto sim =
      std::move(ProfileSimilarity::Create(f.store, f.ontology)).ValueOrDie();
  EXPECT_NEAR(sim->Compute(0, 3), 1.0, 1e-12);
}

TEST(ProfileSimilarityTest, UnknownUserIsZero) {
  const Fixture f;
  const auto sim =
      std::move(ProfileSimilarity::Create(f.store, f.ontology)).ValueOrDie();
  EXPECT_DOUBLE_EQ(sim->Compute(0, 77), 0.0);
  EXPECT_DOUBLE_EQ(sim->Compute(-1, 0), 0.0);
}

TEST(ProfileSimilarityTest, VectorsExposedAndNonEmpty) {
  const Fixture f;
  const auto sim =
      std::move(ProfileSimilarity::Create(f.store, f.ontology)).ValueOrDie();
  EXPECT_GT(sim->VectorOf(0).nnz(), 0u);
  EXPECT_TRUE(sim->VectorOf(42).empty());
  EXPECT_TRUE(sim->vectorizer().fitted());
}

TEST(ProfileSimilarityTest, CorpusWideTermsCarryNoSignal) {
  // Every profile contains a gender token and an "age N" clause; a profile
  // overlapping another *only* in corpus-wide terms should score ~0.
  Fixture f;
  f.Add(3, "Broken arm", "Cisplatin 25 MG Oral Tablet", Gender::kFemale, 40);
  const auto sim =
      std::move(ProfileSimilarity::Create(f.store, f.ontology)).ValueOrDie();
  // User 3 shares only "female"/"40" with user 0 — both may carry a little
  // idf weight (df=2 of 4), so require merely "much smaller than the
  // medication match".
  EXPECT_LT(sim->Compute(0, 3), sim->Compute(0, 2));
}

}  // namespace
}  // namespace fairrec
