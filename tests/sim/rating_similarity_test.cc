#include "sim/rating_similarity.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace fairrec {
namespace {

RatingMatrix MatrixFromTriples(const std::vector<RatingTriple>& triples) {
  RatingMatrixBuilder builder;
  EXPECT_TRUE(builder.AddAll(triples).ok());
  return std::move(builder.Build()).ValueOrDie();
}

TEST(RatingSimilarityTest, PerfectPositiveCorrelationIntersectionMeans) {
  // Users agree perfectly on 3 shared items.
  const RatingMatrix m = MatrixFromTriples(
      {{0, 0, 1}, {0, 1, 3}, {0, 2, 5}, {1, 0, 2}, {1, 1, 3}, {1, 2, 4}});
  RatingSimilarityOptions options;
  options.intersection_means = true;
  const RatingSimilarity sim(&m, options);
  EXPECT_NEAR(sim.Compute(0, 1), 1.0, 1e-12);
}

TEST(RatingSimilarityTest, PerfectNegativeCorrelation) {
  const RatingMatrix m = MatrixFromTriples(
      {{0, 0, 1}, {0, 1, 3}, {0, 2, 5}, {1, 0, 5}, {1, 1, 3}, {1, 2, 1}});
  RatingSimilarityOptions options;
  options.intersection_means = true;
  const RatingSimilarity sim(&m, options);
  EXPECT_NEAR(sim.Compute(0, 1), -1.0, 1e-12);
}

TEST(RatingSimilarityTest, HandComputedGlobalMeans) {
  // Eq. 2 with *global* user means. u0 rates {i0:5, i1:3, i2:1} (mean 3);
  // u1 rates {i0:4, i1:2, i3:3} (mean 3). Shared items: i0, i1.
  // num   = (5-3)(4-3) + (3-3)(2-3) = 2
  // den_a = sqrt((5-3)^2 + (3-3)^2) = 2
  // den_b = sqrt((4-3)^2 + (2-3)^2) = sqrt(2)
  // r     = 2 / (2 * sqrt(2)) = 1/sqrt(2)
  const RatingMatrix m = MatrixFromTriples(
      {{0, 0, 5}, {0, 1, 3}, {0, 2, 1}, {1, 0, 4}, {1, 1, 2}, {1, 3, 3}});
  const RatingSimilarity sim(&m);
  EXPECT_NEAR(sim.Compute(0, 1), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(RatingSimilarityTest, Symmetric) {
  const RatingMatrix m = MatrixFromTriples(
      {{0, 0, 5}, {0, 1, 3}, {0, 2, 1}, {1, 0, 4}, {1, 1, 2}, {1, 2, 5}});
  const RatingSimilarity sim(&m);
  EXPECT_DOUBLE_EQ(sim.Compute(0, 1), sim.Compute(1, 0));
}

TEST(RatingSimilarityTest, BelowMinOverlapIsZero) {
  const RatingMatrix m = MatrixFromTriples({{0, 0, 5}, {1, 0, 5}});
  RatingSimilarityOptions options;
  options.min_overlap = 2;
  const RatingSimilarity sim(&m, options);
  EXPECT_DOUBLE_EQ(sim.Compute(0, 1), 0.0);
}

TEST(RatingSimilarityTest, NoOverlapIsZero) {
  const RatingMatrix m = MatrixFromTriples({{0, 0, 5}, {0, 1, 4}, {1, 2, 5}, {1, 3, 2}});
  const RatingSimilarity sim(&m);
  EXPECT_DOUBLE_EQ(sim.Compute(0, 1), 0.0);
}

TEST(RatingSimilarityTest, ZeroVarianceIsZero) {
  // u1 rates every shared item the same -> zero variance -> undefined -> 0.
  const RatingMatrix m = MatrixFromTriples(
      {{0, 0, 5}, {0, 1, 1}, {1, 0, 3}, {1, 1, 3}});
  RatingSimilarityOptions options;
  options.intersection_means = true;
  const RatingSimilarity sim(&m, options);
  EXPECT_DOUBLE_EQ(sim.Compute(0, 1), 0.0);
}

TEST(RatingSimilarityTest, ShiftToUnitInterval) {
  const RatingMatrix m = MatrixFromTriples(
      {{0, 0, 1}, {0, 1, 3}, {0, 2, 5}, {1, 0, 5}, {1, 1, 3}, {1, 2, 1}});
  RatingSimilarityOptions options;
  options.intersection_means = true;
  options.shift_to_unit_interval = true;
  const RatingSimilarity sim(&m, options);
  EXPECT_NEAR(sim.Compute(0, 1), 0.0, 1e-12);  // raw -1 -> 0
}

TEST(RatingSimilarityTest, UnknownUsersAreZero) {
  const RatingMatrix m = MatrixFromTriples({{0, 0, 5}, {1, 0, 4}});
  const RatingSimilarity sim(&m);
  EXPECT_DOUBLE_EQ(sim.Compute(0, 99), 0.0);
  EXPECT_DOUBLE_EQ(sim.Compute(-3, 1), 0.0);
}

// Property sweep: on random matrices, Pearson stays within [-1, 1] (after the
// documented clamp), is symmetric, and self-similarity with intersection
// means is 1 whenever the user has rating variance.
class RatingSimilarityProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RatingSimilarityProperty, RangeAndSymmetry) {
  Rng rng(GetParam());
  RatingMatrixBuilder builder;
  for (UserId u = 0; u < 12; ++u) {
    for (ItemId i = 0; i < 25; ++i) {
      if (rng.NextBool(0.4)) {
        EXPECT_TRUE(
            builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5))).ok());
      }
    }
  }
  const RatingMatrix m = std::move(builder.Build()).ValueOrDie();
  for (const bool intersection : {false, true}) {
    RatingSimilarityOptions options;
    options.intersection_means = intersection;
    const RatingSimilarity sim(&m, options);
    for (UserId a = 0; a < m.num_users(); ++a) {
      for (UserId b = a + 1; b < m.num_users(); ++b) {
        const double r = sim.Compute(a, b);
        EXPECT_GE(r, -1.0);
        EXPECT_LE(r, 1.0);
        EXPECT_DOUBLE_EQ(r, sim.Compute(b, a));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, RatingSimilarityProperty,
                         ::testing::Values(101u, 202u, 303u, 404u));

}  // namespace
}  // namespace fairrec
