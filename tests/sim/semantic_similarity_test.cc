#include "sim/semantic_similarity.h"

#include <gtest/gtest.h>

#include "ontology/snomed_generator.h"

namespace fairrec {
namespace {

/// Builds the three Table I patients over the paper fixture ontology.
struct TableIFixture {
  Ontology ontology;
  ProfileStore store;

  TableIFixture() {
    ontology = std::move(BuildPaperFixtureOntology()).ValueOrDie();
    PatientProfile p1;
    p1.user = 0;
    p1.problems = {ontology.FindByName("Acute bronchitis")};
    p1.gender = Gender::kFemale;
    p1.age = 40;
    PatientProfile p2;
    p2.user = 1;
    p2.problems = {ontology.FindByName("Chest pain")};
    p2.gender = Gender::kMale;
    p2.age = 53;
    PatientProfile p3;
    p3.user = 2;
    p3.problems = {ontology.FindByName("Tracheobronchitis"),
                   ontology.FindByName("Broken arm")};
    p3.gender = Gender::kMale;
    p3.age = 34;
    EXPECT_TRUE(store.Add(p1).ok());
    EXPECT_TRUE(store.Add(p2).ok());
    EXPECT_TRUE(store.Add(p3).ok());
  }
};

TEST(SemanticSimilarityTest, PaperTableIOrderingHolds) {
  // §V-C: "the similarity based on the health problems between patients 1
  // and 3 is greater than the one between patients 1 and 2."
  const TableIFixture f;
  const SemanticSimilarity sim(&f.store, &f.ontology);
  EXPECT_GT(sim.Compute(0, 2), sim.Compute(0, 1));
}

TEST(SemanticSimilarityTest, HandComputedHarmonicMean) {
  const TableIFixture f;
  const SemanticSimilarity sim(&f.store, &f.ontology);
  // Patients 1 & 2: single pair at distance 5 -> x = 1/6; harmonic mean of
  // one element is the element.
  EXPECT_NEAR(sim.Compute(0, 1), 1.0 / 6.0, 1e-12);
  // Patients 1 & 3: pairs (acute, tracheo) dist 2 -> 1/3 and (acute, broken
  // arm) dist: acute(4) up to Clinical finding(1) = 3 edges, down to broken
  // arm(4) = 3 edges -> 6 -> 1/7. Harmonic mean = 2 / (3 + 7) = 0.2.
  EXPECT_NEAR(sim.Compute(0, 2), 0.2, 1e-12);
}

TEST(SemanticSimilarityTest, SymmetricAndSelfConsistent) {
  const TableIFixture f;
  const SemanticSimilarity sim(&f.store, &f.ontology);
  for (UserId a = 0; a < 3; ++a) {
    for (UserId b = 0; b < 3; ++b) {
      EXPECT_DOUBLE_EQ(sim.Compute(a, b), sim.Compute(b, a));
    }
  }
  // A user with a single problem is maximally similar to themselves.
  EXPECT_DOUBLE_EQ(sim.Compute(0, 0), 1.0);
}

TEST(SemanticSimilarityTest, ScoresWithinUnitInterval) {
  const TableIFixture f;
  const SemanticSimilarity sim(&f.store, &f.ontology);
  for (UserId a = 0; a < 3; ++a) {
    for (UserId b = 0; b < 3; ++b) {
      EXPECT_GE(sim.Compute(a, b), 0.0);
      EXPECT_LE(sim.Compute(a, b), 1.0);
    }
  }
}

TEST(SemanticSimilarityTest, NoProblemsMeansZero) {
  TableIFixture f;
  PatientProfile empty;
  empty.user = 3;
  ASSERT_TRUE(f.store.Add(empty).ok());
  const SemanticSimilarity sim(&f.store, &f.ontology);
  EXPECT_DOUBLE_EQ(sim.Compute(3, 0), 0.0);
  EXPECT_DOUBLE_EQ(sim.Compute(0, 3), 0.0);
}

TEST(SemanticSimilarityTest, UnknownUserIsZero) {
  const TableIFixture f;
  const SemanticSimilarity sim(&f.store, &f.ontology);
  EXPECT_DOUBLE_EQ(sim.Compute(0, 42), 0.0);
}

TEST(SemanticSimilarityTest, ProblemSimilarityExposed) {
  const TableIFixture f;
  const SemanticSimilarity sim(&f.store, &f.ontology);
  const ConceptId acute = f.ontology.FindByName("Acute bronchitis");
  const ConceptId tracheo = f.ontology.FindByName("Tracheobronchitis");
  EXPECT_NEAR(sim.ProblemSimilarity(acute, tracheo), 1.0 / 3.0, 1e-12);
}

TEST(SemanticSimilarityTest, HarmonicMeanLeqBestPair) {
  // The harmonic mean is dominated by the worst pair: it can never exceed
  // the best pair similarity (and is dragged below the arithmetic mean).
  const TableIFixture f;
  const SemanticSimilarity sim(&f.store, &f.ontology);
  const double best_pair = 1.0 / 3.0;  // acute vs tracheo
  EXPECT_LE(sim.Compute(0, 2), best_pair);
}

}  // namespace
}  // namespace fairrec
