#include "sim/pairwise_engine.h"

#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ratings/rating_matrix.h"
#include "sim/rating_similarity.h"
#include "sim/similarity_matrix.h"

namespace fairrec {
namespace {

/// Engine results finish Pearson from raw moments instead of centered sums,
/// so they can differ from FinishPearson in the last few ulps.
constexpr double kParityTolerance = 1e-12;

RatingMatrix MakeRandomMatrix(int32_t num_users, int32_t num_items,
                              double density, uint64_t seed) {
  Rng rng(seed);
  RatingMatrixBuilder builder;
  builder.Reserve(num_users, num_items);
  for (UserId u = 0; u < num_users; ++u) {
    for (ItemId i = 0; i < num_items; ++i) {
      if (!rng.NextBool(density)) continue;
      EXPECT_TRUE(
          builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5))).ok());
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

/// A matrix exercising every degenerate shape the finish pass must handle:
/// zero-variance rows, empty overlaps, and a user with no ratings at all.
RatingMatrix MakeDegenerateMatrix() {
  RatingMatrixBuilder builder;
  builder.Reserve(6, 6);
  // User 0: constant ratings (zero variance) on items 0..3.
  for (ItemId i = 0; i < 4; ++i) EXPECT_TRUE(builder.Add(0, i, 3.0).ok());
  // User 1: varied ratings overlapping user 0.
  EXPECT_TRUE(builder.Add(1, 0, 1.0).ok());
  EXPECT_TRUE(builder.Add(1, 1, 5.0).ok());
  EXPECT_TRUE(builder.Add(1, 2, 2.0).ok());
  // User 2: rates only items nobody else rates (empty overlap with all).
  EXPECT_TRUE(builder.Add(2, 4, 4.0).ok());
  EXPECT_TRUE(builder.Add(2, 5, 2.0).ok());
  // User 3: exactly one co-rated item with user 1 (overlap below min 2).
  EXPECT_TRUE(builder.Add(3, 0, 5.0).ok());
  // User 4: perfectly correlated with user 1 on their overlap.
  EXPECT_TRUE(builder.Add(4, 0, 2.0).ok());
  EXPECT_TRUE(builder.Add(4, 1, 4.0).ok());
  EXPECT_TRUE(builder.Add(4, 2, 3.0).ok());
  // User 5: no ratings.
  return std::move(builder.Build()).ValueOrDie();
}

std::vector<RatingSimilarityOptions> AllOptionCombinations() {
  std::vector<RatingSimilarityOptions> combos;
  for (const bool intersection : {false, true}) {
    for (const bool shift : {false, true}) {
      for (const int32_t min_overlap : {1, 2, 4}) {
        RatingSimilarityOptions options;
        options.intersection_means = intersection;
        options.shift_to_unit_interval = shift;
        options.min_overlap = min_overlap;
        combos.push_back(options);
      }
    }
  }
  return combos;
}

void ExpectParity(const RatingMatrix& matrix,
                  const RatingSimilarityOptions& options,
                  PairwiseEngineOptions engine_options = {}) {
  const PairwiseSimilarityEngine engine(&matrix, options, engine_options);
  const auto packed = std::move(engine.ComputeAll()).ValueOrDie();
  const RatingSimilarity reference(&matrix, options);

  const int32_t n = matrix.num_users();
  size_t index = 0;
  for (UserId a = 0; a < n; ++a) {
    for (UserId b = a + 1; b < n; ++b, ++index) {
      EXPECT_NEAR(packed[index], reference.Compute(a, b), kParityTolerance)
          << "a=" << a << " b=" << b << " min_overlap=" << options.min_overlap
          << " intersection_means=" << options.intersection_means
          << " shift=" << options.shift_to_unit_interval;
    }
  }
  EXPECT_EQ(index, packed.size());
}

TEST(PairwiseEngineTest, PackedTriangleSize) {
  EXPECT_EQ(PairwiseSimilarityEngine::PackedTriangleSize(0), 0u);
  EXPECT_EQ(PairwiseSimilarityEngine::PackedTriangleSize(1), 0u);
  EXPECT_EQ(PairwiseSimilarityEngine::PackedTriangleSize(2), 1u);
  EXPECT_EQ(PairwiseSimilarityEngine::PackedTriangleSize(100), 4950u);
}

TEST(PairwiseEngineTest, ParityOnRandomMatrixAllOptionCombinations) {
  const RatingMatrix matrix = MakeRandomMatrix(60, 40, 0.15, 42);
  for (const auto& options : AllOptionCombinations()) {
    ExpectParity(matrix, options);
  }
}

TEST(PairwiseEngineTest, ParityOnDegenerateMatrixAllOptionCombinations) {
  const RatingMatrix matrix = MakeDegenerateMatrix();
  for (const auto& options : AllOptionCombinations()) {
    ExpectParity(matrix, options);
  }
}

TEST(PairwiseEngineTest, DegenerateCasesAreExactlyZero) {
  const RatingMatrix matrix = MakeDegenerateMatrix();
  const PairwiseSimilarityEngine engine(&matrix, {});
  const auto packed = std::move(engine.ComputeAll()).ValueOrDie();
  const auto at = [&](UserId a, UserId b) {
    const size_t n = 6;
    const size_t row = static_cast<size_t>(a);
    return packed[row * (n - 1) - row * (row - 1) / 2 +
                  static_cast<size_t>(b) - row - 1];
  };
  // Zero variance on user 0's side.
  EXPECT_EQ(at(0, 1), 0.0);
  // Empty overlap: user 2 shares no items with anyone.
  for (const UserId other : {0, 1}) EXPECT_EQ(at(other, 2), 0.0);
  EXPECT_EQ(at(2, 3), 0.0);
  EXPECT_EQ(at(2, 4), 0.0);
  // Single co-rated item falls below the default min_overlap of 2.
  EXPECT_EQ(at(1, 3), 0.0);
  // User 5 rated nothing.
  for (const UserId other : {0, 1, 2, 3, 4}) EXPECT_EQ(at(other, 5), 0.0);
}

TEST(PairwiseEngineTest, ShiftDoesNotRemapDegeneratePairsToHalf) {
  // FinishPearson returns 0 (not 0.5) for undefined pairs even under
  // shift_to_unit_interval; the engine must match.
  const RatingMatrix matrix = MakeDegenerateMatrix();
  RatingSimilarityOptions options;
  options.shift_to_unit_interval = true;
  const PairwiseSimilarityEngine engine(&matrix, options);
  const auto packed = std::move(engine.ComputeAll()).ValueOrDie();
  EXPECT_EQ(packed[0], 0.0);  // pair (0, 1): zero variance side
}

TEST(PairwiseEngineTest, NonRepresentableConstantRowsHaveZeroSimilarity) {
  // Every co-rating is 3.1 — not exactly representable, so the raw-moment
  // variance cancels to rounding noise instead of 0. The relative-epsilon
  // guard must still classify the row as zero-variance. (The centered
  // FinishPearson form can report a spurious +-1 here, so this is engine-only
  // rather than a parity check.)
  RatingMatrixBuilder builder;
  builder.allow_any_scale(true).Reserve(2, 3);
  for (ItemId i = 0; i < 3; ++i) {
    ASSERT_TRUE(builder.Add(0, i, 3.1).ok());
    ASSERT_TRUE(builder.Add(1, i, 3.1).ok());
  }
  const RatingMatrix matrix = std::move(builder.Build()).ValueOrDie();
  for (const bool intersection : {false, true}) {
    RatingSimilarityOptions options;
    options.intersection_means = intersection;
    const PairwiseSimilarityEngine engine(&matrix, options);
    const auto packed = std::move(engine.ComputeAll()).ValueOrDie();
    ASSERT_EQ(packed.size(), 1u);
    EXPECT_EQ(packed[0], 0.0) << "intersection_means=" << intersection;
  }
}

TEST(PairwiseEngineTest, SingleAndEmptyPopulations) {
  RatingMatrixBuilder builder;
  builder.Reserve(1, 3);
  ASSERT_TRUE(builder.Add(0, 0, 4.0).ok());
  const RatingMatrix one = std::move(builder.Build()).ValueOrDie();
  const PairwiseSimilarityEngine engine(&one, {});
  const auto packed = std::move(engine.ComputeAll()).ValueOrDie();
  EXPECT_TRUE(packed.empty());
}

TEST(PairwiseEngineTest, ThreadAndBlockShapeDoNotChangeResults) {
  // Each pair's statistics accumulate in ascending item order no matter how
  // the triangle is tiled, so results are bitwise identical across shapes.
  const RatingMatrix matrix = MakeRandomMatrix(50, 30, 0.2, 7);
  RatingSimilarityOptions options;
  options.intersection_means = true;

  PairwiseEngineOptions reference_shape;
  reference_shape.num_threads = 1;
  reference_shape.block_users = 512;
  const auto reference =
      std::move(PairwiseSimilarityEngine(&matrix, options, reference_shape)
                    .ComputeAll())
          .ValueOrDie();

  for (const size_t threads : {2u, 4u}) {
    for (const int32_t block : {3, 17, 50, 64}) {
      PairwiseEngineOptions shape;
      shape.num_threads = threads;
      shape.block_users = block;
      const auto got =
          std::move(PairwiseSimilarityEngine(&matrix, options, shape).ComputeAll())
              .ValueOrDie();
      ASSERT_EQ(got.size(), reference.size());
      for (size_t k = 0; k < got.size(); ++k) {
        EXPECT_DOUBLE_EQ(got[k], reference[k])
            << "threads=" << threads << " block=" << block << " k=" << k;
      }
    }
  }
}

TEST(PairwiseEngineTest, RejectsWrongSpanSizeAndBadBlock) {
  const RatingMatrix matrix = MakeRandomMatrix(10, 10, 0.3, 3);
  const PairwiseSimilarityEngine engine(&matrix, {});
  std::vector<double> wrong(7, 0.0);
  EXPECT_TRUE(engine.ComputeAll(std::span<double>(wrong))
                  .IsInvalidArgument());

  PairwiseEngineOptions bad_block;
  bad_block.block_users = 0;
  const PairwiseSimilarityEngine bad(&matrix, {}, bad_block);
  std::vector<double> out(PairwiseSimilarityEngine::PackedTriangleSize(10), 0.0);
  EXPECT_TRUE(bad.ComputeAll(std::span<double>(out)).IsInvalidArgument());
}

TEST(PairwiseEngineTest, SimilarityMatrixDelegationMatchesEngine) {
  const RatingMatrix matrix = MakeRandomMatrix(40, 25, 0.2, 11);
  RatingSimilarityOptions options;
  options.shift_to_unit_interval = true;
  const RatingSimilarity base(&matrix, options);

  const auto cached =
      std::move(SimilarityMatrix::Precompute(base, matrix.num_users()))
          .ValueOrDie();
  EXPECT_EQ(cached->name(), "cached-pearson");

  const PairwiseSimilarityEngine engine(&matrix, options);
  const auto packed = std::move(engine.ComputeAll()).ValueOrDie();
  size_t index = 0;
  for (UserId a = 0; a < matrix.num_users(); ++a) {
    for (UserId b = a + 1; b < matrix.num_users(); ++b, ++index) {
      EXPECT_DOUBLE_EQ(cached->Compute(a, b), packed[index]);
    }
  }
  // And the cached matrix still agrees with the direct measure.
  for (UserId a = 0; a < matrix.num_users(); ++a) {
    for (UserId b = a + 1; b < matrix.num_users(); ++b) {
      EXPECT_NEAR(cached->Compute(a, b), base.Compute(a, b), kParityTolerance);
    }
  }
}

TEST(PairwiseEngineTest, PrecomputeOnUserPrefixFallsBackToGenericPath) {
  // When the requested population differs from the matrix's, Precompute must
  // not delegate; the generic path evaluates the base measure per pair.
  const RatingMatrix matrix = MakeRandomMatrix(30, 20, 0.25, 5);
  const RatingSimilarity base(&matrix, {});
  const int32_t prefix = 12;
  const auto cached =
      std::move(SimilarityMatrix::Precompute(base, prefix)).ValueOrDie();
  for (UserId a = 0; a < prefix; ++a) {
    for (UserId b = a + 1; b < prefix; ++b) {
      EXPECT_DOUBLE_EQ(cached->Compute(a, b), base.Compute(a, b));
    }
  }
}

}  // namespace
}  // namespace fairrec
