#include "sim/hybrid_similarity.h"

#include <gtest/gtest.h>

namespace fairrec {
namespace {

/// Constant-valued stand-in measure.
class FakeSimilarity final : public UserSimilarity {
 public:
  explicit FakeSimilarity(double value) : value_(value) {}
  double Compute(UserId, UserId) const override { return value_; }
  std::string name() const override { return "fake"; }

 private:
  double value_;
};

TEST(HybridSimilarityTest, RequiresComponents) {
  EXPECT_TRUE(HybridSimilarity::Create({}).status().IsInvalidArgument());
}

TEST(HybridSimilarityTest, RejectsNullMeasure) {
  EXPECT_TRUE(HybridSimilarity::Create({{nullptr, 1.0}})
                  .status()
                  .IsInvalidArgument());
}

TEST(HybridSimilarityTest, RejectsNegativeWeight) {
  const FakeSimilarity a(0.5);
  EXPECT_TRUE(HybridSimilarity::Create({{&a, -0.1}})
                  .status()
                  .IsInvalidArgument());
}

TEST(HybridSimilarityTest, RejectsAllZeroWeights) {
  const FakeSimilarity a(0.5);
  EXPECT_TRUE(
      HybridSimilarity::Create({{&a, 0.0}}).status().IsInvalidArgument());
}

TEST(HybridSimilarityTest, NormalizesWeights) {
  const FakeSimilarity a(1.0);
  const FakeSimilarity b(0.0);
  // Raw weights 3:1 -> normalized 0.75/0.25.
  const auto hybrid =
      std::move(HybridSimilarity::Create({{&a, 3.0}, {&b, 1.0}})).ValueOrDie();
  EXPECT_NEAR(hybrid->Compute(0, 1), 0.75, 1e-12);
  EXPECT_NEAR(hybrid->components()[0].weight, 0.75, 1e-12);
  EXPECT_NEAR(hybrid->components()[1].weight, 0.25, 1e-12);
}

TEST(HybridSimilarityTest, SingleComponentIsIdentity) {
  const FakeSimilarity a(0.42);
  const auto hybrid =
      std::move(HybridSimilarity::Create({{&a, 7.0}})).ValueOrDie();
  EXPECT_NEAR(hybrid->Compute(3, 4), 0.42, 1e-12);
}

TEST(HybridSimilarityTest, ConvexCombinationStaysInRange) {
  const FakeSimilarity lo(0.0);
  const FakeSimilarity hi(1.0);
  const auto hybrid = std::move(HybridSimilarity::Create(
                                    {{&lo, 0.5}, {&hi, 0.5}}))
                          .ValueOrDie();
  const double s = hybrid->Compute(0, 1);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
  EXPECT_NEAR(s, 0.5, 1e-12);
}

TEST(HybridSimilarityTest, NameListsComponents) {
  const FakeSimilarity a(0.1);
  const FakeSimilarity b(0.2);
  const auto hybrid =
      std::move(HybridSimilarity::Create({{&a, 1.0}, {&b, 1.0}})).ValueOrDie();
  EXPECT_EQ(hybrid->name(), "hybrid(fake+fake)");
}

}  // namespace
}  // namespace fairrec
