// PairMomentShuffle: the external-sort boundary under every layout must
// deliver the identical group stream — same keys, same order, bit-identical
// folded moments — whether everything fit in the buffer, spilled across many
// runs, or pre-combined at spill time (when the emission order permits it).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "common/blob_io.h"
#include "common/random.h"
#include "sim/moment_shuffle.h"

namespace fairrec {
namespace {

struct Group {
  UserId a;
  UserId b;
  int32_t shard;
  PairMoments total;
};

std::vector<Group> DrainAll(PairMomentShuffle& shuffle) {
  std::vector<Group> groups;
  const Status drained = shuffle.Drain(
      [&groups](UserId a, UserId b, int32_t shard,
                const PairMoments& total) -> Status {
        groups.push_back({a, b, shard, total});
        return Status::OK();
      });
  EXPECT_TRUE(drained.ok()) << drained.ToString();
  return groups;
}

void ExpectSameGroups(const std::vector<Group>& got,
                      const std::vector<Group>& want,
                      const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].a, want[i].a) << label << " group " << i;
    EXPECT_EQ(got[i].b, want[i].b) << label << " group " << i;
    EXPECT_EQ(got[i].shard, want[i].shard) << label << " group " << i;
    EXPECT_EQ(got[i].total.n, want[i].total.n) << label << " group " << i;
    // Bit-identity, not tolerance: the whole point of the unique-key merge.
    EXPECT_EQ(got[i].total.sum_a, want[i].total.sum_a) << label << " " << i;
    EXPECT_EQ(got[i].total.sum_b, want[i].total.sum_b) << label << " " << i;
    EXPECT_EQ(got[i].total.sum_aa, want[i].total.sum_aa) << label << " " << i;
    EXPECT_EQ(got[i].total.sum_bb, want[i].total.sum_bb) << label << " " << i;
    EXPECT_EQ(got[i].total.sum_ab, want[i].total.sum_ab) << label << " " << i;
  }
}

/// A synthetic record stream with unique (a, b, shard, item) keys, emitted
/// in a scrambled order (like concurrent reducers would).
std::vector<PairMomentShuffle::Record> ScrambledRecords(uint64_t seed) {
  std::vector<PairMomentShuffle::Record> records;
  Rng rng(seed);
  for (UserId a = 0; a < 9; ++a) {
    for (UserId b = 0; b < 9; ++b) {
      if (a == b) continue;
      for (ItemId item = 0; item < 14; ++item) {
        if (!rng.NextBool(0.55)) continue;
        PairMomentShuffle::Record r;
        r.a = a;
        r.b = b;
        r.shard = static_cast<int32_t>(item % 3);
        r.item = item;
        r.moments.Add(static_cast<Rating>(rng.UniformInt(1, 5)),
                      static_cast<Rating>(rng.UniformInt(1, 5)));
        records.push_back(r);
      }
    }
  }
  // Deterministic scramble.
  for (size_t i = records.size(); i > 1; --i) {
    std::swap(records[i - 1],
              records[static_cast<size_t>(rng.UniformInt(
                  0, static_cast<int64_t>(i) - 1))]);
  }
  return records;
}

Result<PairMomentShuffle> MakeShuffle(size_t max_buffer_bytes,
                                      const std::string& tag) {
  MomentShuffleOptions options;
  options.max_buffer_bytes = max_buffer_bytes;
  if (max_buffer_bytes > 0) {
    options.temp_dir = testing::TempDir() + "/fairrec_shuffle_" + tag;
    EXPECT_TRUE(EnsureDirectory(options.temp_dir).ok());
  }
  return PairMomentShuffle::Create(options);
}

TEST(MomentShuffleTest, EveryBufferBudgetDeliversTheIdenticalGroupStream) {
  const auto records = ScrambledRecords(0x5ca1e);
  ASSERT_GT(records.size(), 200u);

  auto reference_shuffle = MakeShuffle(0, "ref");
  ASSERT_TRUE(reference_shuffle.ok());
  for (const auto& r : records) {
    ASSERT_TRUE(
        reference_shuffle->Add(r.a, r.b, r.shard, r.item, r.moments).ok());
  }
  const std::vector<Group> reference = DrainAll(*reference_shuffle);
  ASSERT_GT(reference.size(), 50u);
  EXPECT_EQ(reference_shuffle->stats().runs_spilled, 0);
  // Ascending (a, b, shard) group order is part of the contract.
  for (size_t i = 1; i < reference.size(); ++i) {
    EXPECT_LT(std::make_tuple(reference[i - 1].a, reference[i - 1].b,
                              reference[i - 1].shard),
              std::make_tuple(reference[i].a, reference[i].b,
                              reference[i].shard));
  }

  const size_t record_bytes = sizeof(PairMomentShuffle::Record);
  int probe = 0;
  for (const size_t budget :
       {record_bytes, record_bytes * 7, record_bytes * 64,
        record_bytes * records.size() * 2}) {
    auto shuffle = MakeShuffle(budget, "b" + std::to_string(probe++));
    ASSERT_TRUE(shuffle.ok()) << shuffle.status().ToString();
    for (const auto& r : records) {
      ASSERT_TRUE(shuffle->Add(r.a, r.b, r.shard, r.item, r.moments).ok());
    }
    const std::vector<Group> groups = DrainAll(*shuffle);
    ExpectSameGroups(groups, reference,
                     "budget " + std::to_string(budget));
    if (budget < record_bytes * records.size()) {
      EXPECT_GT(shuffle->stats().runs_spilled, 0) << budget;
      EXPECT_GT(shuffle->stats().spilled_bytes, 0u) << budget;
    }
    EXPECT_LE(shuffle->stats().peak_buffer_bytes,
              std::max(budget, record_bytes));
    EXPECT_EQ(shuffle->stats().records_in,
              static_cast<int64_t>(records.size()));
    EXPECT_EQ(shuffle->stats().groups_out,
              static_cast<int64_t>(reference.size()));
  }
}

TEST(MomentShuffleTest, CombineOnSpillKeepsParityForItemOrderedEmission) {
  // Emit in global (a, b, shard, item) order — the out-of-core build's
  // emission pattern, where the map-side combine is sound.
  auto records = ScrambledRecords(0xc0de);
  std::sort(records.begin(), records.end(), [](const auto& x, const auto& y) {
    return std::make_tuple(x.a, x.b, x.shard, x.item) <
           std::make_tuple(y.a, y.b, y.shard, y.item);
  });

  auto reference_shuffle = MakeShuffle(0, "combine_ref");
  ASSERT_TRUE(reference_shuffle.ok());
  for (const auto& r : records) {
    ASSERT_TRUE(
        reference_shuffle->Add(r.a, r.b, r.shard, r.item, r.moments).ok());
  }
  const std::vector<Group> reference = DrainAll(*reference_shuffle);

  MomentShuffleOptions options;
  options.max_buffer_bytes = sizeof(PairMomentShuffle::Record) * 13;
  options.temp_dir = testing::TempDir() + "/fairrec_shuffle_combine";
  options.combine_on_spill = true;
  ASSERT_TRUE(EnsureDirectory(options.temp_dir).ok());
  auto combining = PairMomentShuffle::Create(options);
  ASSERT_TRUE(combining.ok());
  for (const auto& r : records) {
    ASSERT_TRUE(combining->Add(r.a, r.b, r.shard, r.item, r.moments).ok());
  }
  const std::vector<Group> groups = DrainAll(*combining);
  ExpectSameGroups(groups, reference, "combine_on_spill");
  EXPECT_GT(combining->stats().runs_spilled, 0);
}

TEST(MomentShuffleTest, CreateValidatesTheBudgetedConfiguration) {
  MomentShuffleOptions no_dir;
  no_dir.max_buffer_bytes = 1 << 20;
  EXPECT_TRUE(PairMomentShuffle::Create(no_dir).status().IsInvalidArgument());

  MomentShuffleOptions tiny;
  tiny.max_buffer_bytes = 1;  // below one record
  tiny.temp_dir = testing::TempDir() + "/fairrec_shuffle_tiny";
  EXPECT_TRUE(PairMomentShuffle::Create(tiny).status().IsInvalidArgument());
}

TEST(MomentShuffleTest, EmptyShuffleDrainsCleanly) {
  auto shuffle = MakeShuffle(0, "empty");
  ASSERT_TRUE(shuffle.ok());
  EXPECT_TRUE(DrainAll(*shuffle).empty());
  EXPECT_EQ(shuffle->stats().groups_out, 0);
}

}  // namespace
}  // namespace fairrec
