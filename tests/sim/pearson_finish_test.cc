#include "sim/pearson_finish.h"

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace fairrec {
namespace {

PairMoments MomentsOf(const std::vector<std::pair<Rating, Rating>>& shared) {
  PairMoments m;
  for (const auto& [ra, rb] : shared) m.Add(ra, rb);
  return m;
}

double MeanOf(const std::vector<std::pair<Rating, Rating>>& shared, bool first) {
  double sum = 0.0;
  for (const auto& [ra, rb] : shared) sum += first ? ra : rb;
  return shared.empty() ? 0.0 : sum / static_cast<double>(shared.size());
}

TEST(PairMomentsTest, AddAccumulatesAllSixStatistics) {
  PairMoments m;
  m.Add(2.0, 5.0);
  m.Add(4.0, 1.0);
  EXPECT_EQ(m.n, 2);
  EXPECT_EQ(m.sum_a, 6.0);
  EXPECT_EQ(m.sum_b, 6.0);
  EXPECT_EQ(m.sum_aa, 20.0);
  EXPECT_EQ(m.sum_bb, 26.0);
  EXPECT_EQ(m.sum_ab, 14.0);
}

TEST(PairMomentsTest, MergeOfShardPartialsEqualsSequentialAccumulation) {
  // Integer ratings: every moment is exactly representable, so any shard
  // split merges to the same bits as the one-pass accumulation — the
  // property the MapReduce Job 2 reducers rely on.
  Rng rng(7);
  std::vector<std::pair<Rating, Rating>> shared;
  for (int i = 0; i < 23; ++i) {
    shared.emplace_back(static_cast<Rating>(rng.UniformInt(1, 5)),
                        static_cast<Rating>(rng.UniformInt(1, 5)));
  }
  const PairMoments whole = MomentsOf(shared);
  for (const size_t split : {1u, 7u, 11u, 22u}) {
    PairMoments left;
    PairMoments right;
    for (size_t i = 0; i < shared.size(); ++i) {
      (i < split ? left : right).Add(shared[i].first, shared[i].second);
    }
    PairMoments merged = left;
    merged.Merge(right);
    EXPECT_EQ(merged, whole) << "split at " << split;
  }
}

TEST(PairMomentsTest, SwappedExchangesTheUserRoles) {
  PairMoments m;
  m.Add(1.0, 4.0);
  m.Add(3.0, 2.0);
  const PairMoments s = m.Swapped();
  EXPECT_EQ(s.sum_a, m.sum_b);
  EXPECT_EQ(s.sum_b, m.sum_a);
  EXPECT_EQ(s.sum_aa, m.sum_bb);
  EXPECT_EQ(s.sum_bb, m.sum_aa);
  EXPECT_EQ(s.sum_ab, m.sum_ab);
  EXPECT_EQ(s.n, m.n);
  EXPECT_EQ(s.Swapped(), m);
}

TEST(FinishPearsonFromMomentsTest, AgreesWithCenteredFinishPearson) {
  Rng rng(20170417);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::pair<Rating, Rating>> shared;
    const int n = static_cast<int>(rng.UniformInt(2, 12));
    for (int i = 0; i < n; ++i) {
      shared.emplace_back(static_cast<Rating>(rng.UniformInt(1, 5)),
                          static_cast<Rating>(rng.UniformInt(1, 5)));
    }
    // Global means drawn off the intersection, as Eq. 2 prescribes.
    const double mean_a = MeanOf(shared, true) + 0.25;
    const double mean_b = MeanOf(shared, false) - 0.5;
    for (const bool intersection : {false, true}) {
      for (const bool shift : {false, true}) {
        RatingSimilarityOptions options;
        options.intersection_means = intersection;
        options.shift_to_unit_interval = shift;
        const double centered = FinishPearson(
            std::span<const std::pair<Rating, Rating>>(shared), mean_a, mean_b,
            options);
        const double from_moments = FinishPearsonFromMoments(
            MomentsOf(shared), mean_a, mean_b, options);
        EXPECT_NEAR(from_moments, centered, 1e-12)
            << "trial " << trial << " intersection=" << intersection
            << " shift=" << shift;
      }
    }
  }
}

TEST(FinishPearsonFromMomentsTest, GuardsDegenerateCases) {
  RatingSimilarityOptions options;  // min_overlap = 2
  PairMoments one;
  one.Add(3.0, 4.0);
  EXPECT_EQ(FinishPearsonFromMoments(one, 3.0, 4.0, options), 0.0);

  options.min_overlap = 0;
  EXPECT_EQ(FinishPearsonFromMoments(PairMoments{}, 0.0, 0.0, options), 0.0);

  // Constant co-rating rows have zero variance -> 0, including values whose
  // sums are not exactly representable (the relative-epsilon guard).
  options.min_overlap = 2;
  options.intersection_means = true;
  PairMoments constant;
  for (int i = 0; i < 5; ++i) constant.Add(3.1, static_cast<Rating>(i + 1));
  EXPECT_EQ(FinishPearsonFromMoments(constant, 0.0, 0.0, options), 0.0);
}

TEST(FinishPearsonFromMomentsTest, SwappedOrientationAgreesToRounding) {
  // Pearson is symmetric in exact arithmetic but the finish expression is
  // not evaluated symmetrically, so the two orientations may differ in the
  // last ulps — the reason Job 2 canonicalizes to the engine's a < b
  // orientation (an exact field swap) instead of relying on symmetry.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::pair<Rating, Rating>> shared;
    for (int i = 0; i < 6; ++i) {
      shared.emplace_back(static_cast<Rating>(rng.UniformInt(1, 5)),
                          static_cast<Rating>(rng.UniformInt(1, 5)));
    }
    const PairMoments m = MomentsOf(shared);
    RatingSimilarityOptions options;
    const double forward = FinishPearsonFromMoments(m, 2.75, 3.5, options);
    const double backward =
        FinishPearsonFromMoments(m.Swapped(), 3.5, 2.75, options);
    EXPECT_NEAR(forward, backward, 1e-14) << "trial " << trial;
    // The canonical field swap itself is exact: re-finishing the same
    // orientation after a double swap is bit-identical.
    EXPECT_EQ(FinishPearsonFromMoments(m.Swapped().Swapped(), 2.75, 3.5,
                                       options),
              forward);
  }
}

}  // namespace
}  // namespace fairrec
