// Sparse-vs-dense parity suite: the engine-built PeerIndex must reproduce,
// exactly, the peer sets PeerFinder derives from the dense SimilarityMatrix
// path. Both routes finish Pearson through the same sufficient-statistics
// engine, so every comparison below is bitwise (EXPECT_EQ on doubles), not
// tolerance-based.

#include "sim/peer_index.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cf/peer_finder.h"
#include "common/random.h"
#include "ratings/rating_matrix.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_adapter.h"
#include "sim/rating_similarity.h"
#include "sim/similarity_matrix.h"

namespace fairrec {
namespace {

RatingMatrix MakeRandomMatrix(int32_t num_users, int32_t num_items,
                              double density, uint64_t seed) {
  Rng rng(seed);
  RatingMatrixBuilder builder;
  builder.Reserve(num_users, num_items);
  for (UserId u = 0; u < num_users; ++u) {
    for (ItemId i = 0; i < num_items; ++i) {
      if (!rng.NextBool(density)) continue;
      EXPECT_TRUE(
          builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5))).ok());
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

/// The dense reference: PeerFinder scanning a precomputed SimilarityMatrix.
std::vector<std::vector<Peer>> DensePeerSets(const RatingMatrix& matrix,
                                             const RatingSimilarityOptions& options,
                                             const PeerFinderOptions& finder_options) {
  const RatingSimilarity base(&matrix, options);
  const auto cached =
      std::move(SimilarityMatrix::Precompute(base, matrix.num_users()))
          .ValueOrDie();
  const PeerFinder finder(cached.get(), matrix.num_users(), finder_options);
  std::vector<std::vector<Peer>> sets;
  sets.reserve(static_cast<size_t>(matrix.num_users()));
  for (UserId u = 0; u < matrix.num_users(); ++u) {
    sets.push_back(finder.FindPeers(u));
  }
  return sets;
}

void ExpectIndexMatchesDense(const RatingMatrix& matrix,
                             const RatingSimilarityOptions& options,
                             double delta, int32_t max_peers) {
  PeerIndexOptions peer_options;
  peer_options.delta = delta;
  peer_options.max_peers_per_user = max_peers;
  const PairwiseSimilarityEngine engine(&matrix, options);
  const PeerIndex index =
      std::move(engine.BuildPeerIndex(peer_options)).ValueOrDie();

  PeerFinderOptions finder_options;
  finder_options.delta = delta;
  finder_options.max_peers = max_peers;
  const auto dense = DensePeerSets(matrix, options, finder_options);

  for (UserId u = 0; u < matrix.num_users(); ++u) {
    const auto sparse = index.PeersOf(u);
    const std::vector<Peer> got(sparse.begin(), sparse.end());
    EXPECT_EQ(got, dense[static_cast<size_t>(u)])
        << "u=" << u << " delta=" << delta << " max_peers=" << max_peers
        << " min_overlap=" << options.min_overlap
        << " intersection_means=" << options.intersection_means;
  }
}

TEST(PeerIndexParityTest, MatchesDensePeerFinderAcrossOptionGrid) {
  const RatingMatrix matrix = MakeRandomMatrix(70, 45, 0.15, 42);
  for (const bool intersection : {false, true}) {
    for (const int32_t min_overlap : {1, 2, 4}) {
      for (const double delta : {0.0, 0.1, 0.4}) {
        RatingSimilarityOptions options;
        options.intersection_means = intersection;
        options.min_overlap = min_overlap;
        ExpectIndexMatchesDense(matrix, options, delta, /*max_peers=*/0);
      }
    }
  }
}

TEST(PeerIndexParityTest, MatchesDenseUnderShiftedScale) {
  const RatingMatrix matrix = MakeRandomMatrix(60, 40, 0.2, 7);
  RatingSimilarityOptions options;
  options.shift_to_unit_interval = true;
  for (const double delta : {0.5, 0.55, 0.7}) {
    ExpectIndexMatchesDense(matrix, options, delta, /*max_peers=*/0);
  }
}

TEST(PeerIndexParityTest, DeltaBoundaryPairIsIncludedOnBothPaths) {
  // Def. 1 is inclusive (simU >= delta). Setting delta to the exact stored
  // similarity of a real pair keeps that pair on both paths; both routes
  // finish Pearson through the engine, so the comparison is bit-for-bit.
  const RatingMatrix matrix = MakeRandomMatrix(40, 30, 0.25, 11);
  const PairwiseSimilarityEngine engine(&matrix, {});
  const auto packed = std::move(engine.ComputeAll()).ValueOrDie();

  // The largest off-diagonal similarity is guaranteed to be somebody's peer.
  double boundary = 0.0;
  for (const double sim : packed) boundary = std::max(boundary, sim);
  ASSERT_GT(boundary, 0.0) << "corpus produced no positive similarity";

  ExpectIndexMatchesDense(matrix, {}, boundary, /*max_peers=*/0);

  PeerIndexOptions peer_options;
  peer_options.delta = boundary;
  const PeerIndex index =
      std::move(engine.BuildPeerIndex(peer_options)).ValueOrDie();
  EXPECT_GT(index.num_entries(), 0);
  // Nudging delta past the boundary evicts the pair from both paths.
  peer_options.delta = std::nextafter(boundary, 2.0);
  const PeerIndex above =
      std::move(engine.BuildPeerIndex(peer_options)).ValueOrDie();
  EXPECT_EQ(above.num_entries(), 0);
}

TEST(PeerIndexParityTest, MinOverlapDropsThinPairsOnBothPaths) {
  // Users 0 and 1 share exactly 3 co-rated items with strong correlation;
  // min_overlap 4 must erase the pair from sparse and dense alike.
  RatingMatrixBuilder builder;
  builder.Reserve(3, 6);
  for (ItemId i = 0; i < 3; ++i) {
    ASSERT_TRUE(builder.Add(0, i, static_cast<Rating>(i + 1)).ok());
    ASSERT_TRUE(builder.Add(1, i, static_cast<Rating>(i + 2)).ok());
  }
  for (ItemId i = 3; i < 6; ++i) {
    ASSERT_TRUE(builder.Add(2, i, 3.0).ok());
  }
  const RatingMatrix matrix = std::move(builder.Build()).ValueOrDie();

  for (const int32_t min_overlap : {2, 3, 4}) {
    RatingSimilarityOptions options;
    options.min_overlap = min_overlap;
    ExpectIndexMatchesDense(matrix, options, 0.5, /*max_peers=*/0);

    PeerIndexOptions peer_options;
    peer_options.delta = 0.5;
    const PairwiseSimilarityEngine engine(&matrix, options);
    const PeerIndex index =
        std::move(engine.BuildPeerIndex(peer_options)).ValueOrDie();
    if (min_overlap <= 3) {
      EXPECT_EQ(index.PeersOf(0).size(), 1u) << "min_overlap=" << min_overlap;
    } else {
      EXPECT_TRUE(index.PeersOf(0).empty());
    }
  }
}

TEST(PeerIndexParityTest, MaxPeersTieBreakingMatchesDense) {
  // Users 1..4 rate identically, so every pair among them has similarity
  // exactly 1.0 — four-way ties. The capped heap must keep the same peers
  // the dense path's nth_element keeps: descending similarity, then
  // ascending id.
  RatingMatrixBuilder builder;
  builder.Reserve(6, 4);
  for (UserId u = 1; u <= 4; ++u) {
    for (ItemId i = 0; i < 4; ++i) {
      ASSERT_TRUE(builder.Add(u, i, static_cast<Rating>(i + 1)).ok());
    }
  }
  ASSERT_TRUE(builder.Add(0, 0, 4.0).ok());
  ASSERT_TRUE(builder.Add(0, 1, 4.0).ok());
  ASSERT_TRUE(builder.Add(5, 0, 1.0).ok());
  const RatingMatrix matrix = std::move(builder.Build()).ValueOrDie();

  for (const int32_t cap : {1, 2, 3}) {
    ExpectIndexMatchesDense(matrix, {}, 0.9, cap);
  }

  PeerIndexOptions peer_options;
  peer_options.delta = 0.9;
  peer_options.max_peers_per_user = 2;
  const PairwiseSimilarityEngine engine(&matrix, {});
  const PeerIndex index =
      std::move(engine.BuildPeerIndex(peer_options)).ValueOrDie();
  const auto peers = index.PeersOf(1);
  ASSERT_EQ(peers.size(), 2u);
  EXPECT_EQ(peers[0].user, 2);  // lowest ids win the tie
  EXPECT_EQ(peers[1].user, 3);
  EXPECT_EQ(peers[0].similarity, peers[1].similarity);  // genuinely tied
  EXPECT_NEAR(peers[0].similarity, 1.0, 1e-12);
}

TEST(PeerIndexParityTest, ThreadAndBlockShapeDoNotChangeIndex) {
  // The concurrent heap-merge must be deterministic: tiles race to offer
  // into the same user's list, but the retained set is defined by the
  // BetterPeer total order alone.
  const RatingMatrix matrix = MakeRandomMatrix(50, 30, 0.2, 3);
  PeerIndexOptions peer_options;
  peer_options.delta = 0.1;
  peer_options.max_peers_per_user = 4;

  PairwiseEngineOptions reference_shape;
  reference_shape.num_threads = 1;
  const PeerIndex reference =
      std::move(PairwiseSimilarityEngine(&matrix, {}, reference_shape)
                    .BuildPeerIndex(peer_options))
          .ValueOrDie();

  for (const size_t threads : {2u, 4u}) {
    for (const int32_t block : {3, 17, 50}) {
      PairwiseEngineOptions shape;
      shape.num_threads = threads;
      shape.block_users = block;
      const PeerIndex got =
          std::move(PairwiseSimilarityEngine(&matrix, {}, shape)
                        .BuildPeerIndex(peer_options))
              .ValueOrDie();
      ASSERT_EQ(got.num_entries(), reference.num_entries())
          << "threads=" << threads << " block=" << block;
      for (UserId u = 0; u < matrix.num_users(); ++u) {
        const auto a = got.PeersOf(u);
        const auto b = reference.PeersOf(u);
        EXPECT_EQ(std::vector<Peer>(a.begin(), a.end()),
                  std::vector<Peer>(b.begin(), b.end()))
            << "threads=" << threads << " block=" << block << " u=" << u;
      }
    }
  }
}

TEST(PeerIndexTest, CappedBuildBoundsStorage) {
  const RatingMatrix matrix = MakeRandomMatrix(120, 40, 0.3, 9);
  PeerIndexOptions peer_options;
  peer_options.delta = 0.0;  // admit everything: worst case for storage
  peer_options.max_peers_per_user = 5;
  const PairwiseSimilarityEngine engine(&matrix, {});
  const PeerIndex index =
      std::move(engine.BuildPeerIndex(peer_options)).ValueOrDie();

  const size_t cap_bytes =
      static_cast<size_t>(matrix.num_users()) * 5 * sizeof(Peer) +
      (static_cast<size_t>(matrix.num_users()) + 1) * sizeof(size_t);
  EXPECT_LE(index.StorageBytes(), cap_bytes);
  // The build itself must also stay O(U * k): lists + CSR, never U^2.
  EXPECT_LE(index.build_peak_bytes(), 2 * cap_bytes);
  for (UserId u = 0; u < matrix.num_users(); ++u) {
    EXPECT_LE(index.PeersOf(u).size(), 5u);
  }
}

TEST(PeerIndexTest, EmptyAndOutOfRangeLookups) {
  const PeerIndex empty;
  EXPECT_EQ(empty.num_users(), 0);
  EXPECT_TRUE(empty.PeersOf(0).empty());
  EXPECT_TRUE(empty.PeersOf(-1).empty());

  PeerIndex::Builder builder(3, {});
  builder.Offer(0, 0, 1.0);   // self: ignored
  builder.Offer(-1, 1, 1.0);  // out of range: ignored
  builder.Offer(0, 9, 1.0);   // peer out of range: ignored
  builder.Offer(0, 2, 0.8);
  const PeerIndex index = std::move(builder).Build();
  EXPECT_EQ(index.num_entries(), 1);
  ASSERT_EQ(index.PeersOf(0).size(), 1u);
  EXPECT_EQ(index.PeersOf(0)[0], (Peer{2, 0.8}));
  EXPECT_TRUE(index.PeersOf(5).empty());
}

TEST(DensePeerAdapterTest, MatchesPeerFinderOverSameSimilarity) {
  // The adapter is the PeerProvider for bases with no sufficient-statistics
  // decomposition; over a cached Pearson matrix it must agree with the scan
  // path exactly.
  const RatingMatrix matrix = MakeRandomMatrix(45, 30, 0.2, 13);
  RatingSimilarityOptions options;
  options.shift_to_unit_interval = true;
  const RatingSimilarity base(&matrix, options);
  const auto cached =
      std::move(SimilarityMatrix::Precompute(base, matrix.num_users()))
          .ValueOrDie();

  PeerIndexOptions peer_options;
  peer_options.delta = 0.55;
  const DensePeerAdapter adapter(*cached, matrix.num_users(), peer_options);
  EXPECT_EQ(adapter.name(), "peers(cached-pearson)");

  PeerFinderOptions finder_options;
  finder_options.delta = 0.55;
  const PeerFinder dense(cached.get(), matrix.num_users(), finder_options);
  for (UserId u = 0; u < matrix.num_users(); ++u) {
    const auto sparse = adapter.PeersOf(u);
    EXPECT_EQ(std::vector<Peer>(sparse.begin(), sparse.end()), dense.FindPeers(u))
        << "u=" << u;
  }
}

}  // namespace
}  // namespace fairrec
