// TileResidencyManager + out-of-core build suite. The load-bearing claims:
//
//   * the out-of-core build (spilling shuffle -> streamed tile assembly) is
//     bit-identical to PairwiseSimilarityEngine::BuildMomentStore at every
//     byte budget, including unbounded;
//   * BuildPeerIndexFromStore is byte-identical to the engine's
//     BuildPeerIndex, budgeted or not;
//   * randomized evict/restore/pin/dirty sequences through the manager never
//     change the store's contents, and the recorded resident peak respects
//     the budget;
//   * the budgeted IncrementalPeerGraph stays bit-identical to the
//     unbudgeted one across a delta stream (integer ratings — the exact
//     regime).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/blob_io.h"
#include "common/random.h"
#include "ratings/rating_delta.h"
#include "ratings/rating_matrix.h"
#include "sim/incremental_peer_graph.h"
#include "sim/moment_store.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"
#include "sim/tile_residency.h"

namespace fairrec {
namespace {

RatingMatrix CorpusMatrix(uint64_t seed, int32_t users, int32_t items,
                          double density) {
  RatingMatrixBuilder builder;
  Rng rng(seed);
  for (UserId u = 0; u < users; ++u) {
    for (ItemId i = 0; i < items; ++i) {
      if (rng.NextBool(density)) {
        EXPECT_TRUE(
            builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5))).ok());
      }
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

std::string FreshSpillDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/fairrec_residency_" + name;
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  return dir;
}

MomentStoreOptions SmallTiles() {
  MomentStoreOptions options;
  options.tile_users = 8;
  return options;
}

TEST(OutOfCoreBuildTest, UnboundedBuildMatchesEngineStore) {
  const RatingMatrix matrix = CorpusMatrix(0xabc1, 60, 40, 0.35);
  const PairwiseSimilarityEngine engine(&matrix, {}, {});
  const MomentStore reference =
      std::move(engine.BuildMomentStore(SmallTiles())).ValueOrDie();

  OutOfCoreBuildOptions options;
  options.store = SmallTiles();
  OutOfCoreBuildStats stats;
  auto built = BuildMomentStoreOutOfCore(matrix, options, &stats);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->residency, nullptr);
  EXPECT_TRUE(*built->store == reference);
  EXPECT_EQ(stats.shuffle.runs_spilled, 0);
  EXPECT_GT(stats.shuffle.records_in, 0);
}

TEST(OutOfCoreBuildTest, EveryBudgetYieldsTheIdenticalStore) {
  const RatingMatrix matrix = CorpusMatrix(0xabc2, 64, 48, 0.4);
  const PairwiseSimilarityEngine engine(&matrix, {}, {});
  const MomentStore reference =
      std::move(engine.BuildMomentStore(SmallTiles())).ValueOrDie();
  // Reference footprint, to pick budgets that genuinely force eviction.
  const size_t full_bytes = reference.ResidentBytes();
  ASSERT_GT(full_bytes, 0u);

  int probed = 0;
  for (const size_t budget : {full_bytes / 3, full_bytes / 2, full_bytes * 2}) {
    const std::string dir =
        FreshSpillDir("budget_" + std::to_string(probed++));
    OutOfCoreBuildOptions options;
    options.store = SmallTiles();
    options.budget_bytes = budget;
    options.spill_dir = dir;
    // A small shuffle buffer so the external-sort path runs too.
    options.shuffle_buffer_bytes = 4096;
    OutOfCoreBuildStats stats;
    auto built = BuildMomentStoreOutOfCore(matrix, options, &stats);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    ASSERT_NE(built->residency, nullptr);
    EXPECT_GT(stats.shuffle.runs_spilled, 0);
    if (budget < full_bytes) {
      // Tiles must actually have paged out, and the recorded resident peak
      // must respect the budget (the bench gate's exact property).
      EXPECT_GT(built->residency->stats().evictions, 0) << budget;
      EXPECT_LE(built->residency->stats().peak_resident_bytes, budget);
    }
    ASSERT_TRUE(built->residency->RestoreAll().ok());
    EXPECT_TRUE(*built->store == reference) << "budget " << budget;
  }
}

TEST(OutOfCoreBuildTest, PeerIndexFromStoreMatchesEngineAtEveryBudget) {
  const RatingMatrix matrix = CorpusMatrix(0xabc3, 72, 50, 0.35);
  RatingSimilarityOptions sim_options;
  sim_options.shift_to_unit_interval = true;
  PeerIndexOptions peer_options;
  peer_options.delta = 0.52;
  peer_options.max_peers_per_user = 9;
  const PairwiseSimilarityEngine engine(&matrix, sim_options);
  const PeerIndex reference =
      std::move(engine.BuildPeerIndex(peer_options)).ValueOrDie();
  const MomentStore full_store =
      std::move(engine.BuildMomentStore(SmallTiles())).ValueOrDie();
  const size_t full_bytes = full_store.ResidentBytes();

  // Unbudgeted store, no residency manager.
  {
    PairwiseEngineStats stats;
    auto index = BuildPeerIndexFromStore(matrix, full_store, nullptr,
                                         sim_options, peer_options, &stats);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    EXPECT_TRUE(*index == reference);
    EXPECT_EQ(stats.tile_restores, 0);
    EXPECT_GT(stats.pairs_finished, 0);
  }

  int probed = 0;
  for (const size_t budget : {full_bytes / 3, full_bytes / 2}) {
    const std::string dir = FreshSpillDir("peer_" + std::to_string(probed++));
    OutOfCoreBuildOptions options;
    options.store = SmallTiles();
    options.budget_bytes = budget;
    options.spill_dir = dir;
    auto built = BuildMomentStoreOutOfCore(matrix, options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    PairwiseEngineStats stats;
    auto index =
        BuildPeerIndexFromStore(matrix, *built->store, built->residency.get(),
                                sim_options, peer_options, &stats);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    EXPECT_TRUE(*index == reference) << "budget " << budget;
    // The sweep faulted evicted tiles back in and stayed under budget.
    EXPECT_GT(stats.tile_restores, 0) << budget;
    EXPECT_LE(stats.peak_resident_bytes, budget) << budget;
  }
}

TEST(TileResidencyManagerTest, BudgetRequiresASpillDir) {
  const RatingMatrix matrix = CorpusMatrix(0xabc4, 20, 16, 0.4);
  const PairwiseSimilarityEngine engine(&matrix, {}, {});
  MomentStore store =
      std::move(engine.BuildMomentStore(SmallTiles())).ValueOrDie();
  EXPECT_TRUE(store.WithBudget(1 << 20, "").status().IsInvalidArgument());
}

TEST(TileResidencyManagerTest, RandomizedEvictRestorePinSequencesPreserveTheStore) {
  const RatingMatrix matrix = CorpusMatrix(0xabc5, 56, 44, 0.4);
  const PairwiseSimilarityEngine engine(&matrix, {}, {});
  const MomentStore reference =
      std::move(engine.BuildMomentStore(SmallTiles())).ValueOrDie();
  MomentStore store =
      std::move(engine.BuildMomentStore(SmallTiles())).ValueOrDie();
  const size_t budget = reference.ResidentBytes() / 2;
  const std::string dir = FreshSpillDir("random_ops");
  auto manager = store.WithBudget(budget, dir);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  ASSERT_TRUE(manager->EnforceBudget().ok());

  const size_t tiles = store.num_tiles();
  ASSERT_GT(tiles, 2u);
  std::vector<int> held_pins(tiles, 0);
  Rng rng(0x9e37);
  for (int step = 0; step < 600; ++step) {
    const auto t =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(tiles) - 1));
    switch (rng.UniformInt(0, 5)) {
      case 0:
        ASSERT_TRUE(manager->EnsureResident(t).ok()) << step;
        break;
      case 1:
        ASSERT_TRUE(manager->Pin(t).ok()) << step;
        ++held_pins[t];
        break;
      case 2:
        if (held_pins[t] > 0) {
          manager->Unpin(t);
          --held_pins[t];
        }
        break;
      case 3:
        ASSERT_TRUE(manager->Prefetch(t).ok()) << step;
        break;
      case 4:
        // Dirty only resident tiles: dirtying an evicted tile would declare
        // its only copy stale, which is the caller contract violation the
        // FailedPrecondition path guards.
        if (store.TileResident(t)) manager->NoteTileDirty(t);
        break;
      default:
        ASSERT_TRUE(manager->EnforceBudget().ok()) << step;
        break;
    }
  }
  for (size_t t = 0; t < tiles; ++t) {
    while (held_pins[t] > 0) {
      manager->Unpin(t);
      --held_pins[t];
    }
  }
  ASSERT_TRUE(manager->EnforceBudget().ok());
  EXPECT_GT(manager->stats().evictions, 0);
  EXPECT_GT(manager->stats().restores, 0);

  ASSERT_TRUE(manager->RestoreAll().ok());
  EXPECT_TRUE(store == reference);
}

TEST(TileResidencyManagerTest, EvictionOutsideTheManagerIsFailedPrecondition) {
  const RatingMatrix matrix = CorpusMatrix(0xabc6, 24, 20, 0.4);
  const PairwiseSimilarityEngine engine(&matrix, {}, {});
  MomentStore store =
      std::move(engine.BuildMomentStore(SmallTiles())).ValueOrDie();
  const std::string dir = FreshSpillDir("outside_evict");
  auto manager = store.WithBudget(store.ResidentBytes() * 2, dir);
  ASSERT_TRUE(manager.ok());
  store.EvictTile(0);  // behind the manager's back: no blob exists
  EXPECT_TRUE(manager->EnsureResident(0).IsFailedPrecondition());
}

TEST(IncrementalPeerGraphBudgetTest, BudgetedGraphTracksUnbudgetedBitForBit) {
  IncrementalPeerGraphOptions base;
  base.peers.delta = 0.1;
  base.peers.max_peers_per_user = 8;
  base.store.tile_users = 4;

  IncrementalPeerGraphOptions budgeted = base;
  budgeted.store_budget_bytes = 6 * 1024;
  budgeted.store_spill_dir = FreshSpillDir("graph_budget");

  // Budget without a spill dir must be rejected up front.
  {
    IncrementalPeerGraphOptions bad = base;
    bad.store_budget_bytes = 1024;
    auto built =
        IncrementalPeerGraph::Build(CorpusMatrix(0xabc7, 20, 12, 0.5), bad);
    EXPECT_TRUE(built.status().IsInvalidArgument());
  }

  auto plain =
      IncrementalPeerGraph::Build(CorpusMatrix(0xabc7, 20, 12, 0.5), base);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  auto tight =
      IncrementalPeerGraph::Build(CorpusMatrix(0xabc7, 20, 12, 0.5), budgeted);
  ASSERT_TRUE(tight.ok()) << tight.status().ToString();
  ASSERT_NE(tight->residency(), nullptr);

  Rng rng(0x77aa);
  int64_t spill_traffic = 0;
  for (int batch = 0; batch < 12; ++batch) {
    RatingDelta delta;
    const int64_t cells = rng.UniformInt(1, 5);
    for (int64_t c = 0; c < cells; ++c) {
      ASSERT_TRUE(delta
                      .Add(static_cast<UserId>(rng.UniformInt(0, 23)),
                           static_cast<ItemId>(rng.UniformInt(0, 15)),
                           static_cast<Rating>(rng.UniformInt(1, 5)))
                      .ok());
    }
    auto plain_stats = plain->ApplyDelta(delta);
    ASSERT_TRUE(plain_stats.ok()) << plain_stats.status().ToString();
    auto tight_stats = tight->ApplyDelta(delta);
    ASSERT_TRUE(tight_stats.ok()) << tight_stats.status().ToString();
    // The served artifact is identical after every batch, while the
    // budgeted side actually pages.
    EXPECT_TRUE(*plain->index() == *tight->index()) << batch;
    EXPECT_GT(tight_stats->resident_bytes, 0u) << batch;
    spill_traffic += tight_stats->tile_restores + tight_stats->tile_spills;
  }
  EXPECT_GT(spill_traffic, 0);

  ASSERT_TRUE(tight->EnsureStoreResident().ok());
  EXPECT_TRUE(plain->store() == tight->store());
  EXPECT_TRUE(plain->matrix() == tight->matrix());
}

}  // namespace
}  // namespace fairrec
