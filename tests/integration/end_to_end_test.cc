#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "cf/recommender.h"
#include "core/brute_force.h"
#include "core/fairness_heuristic.h"
#include "core/greedy_selector.h"
#include "core/group_recommender.h"
#include "data/scenario.h"
#include "eval/metrics.h"
#include "mapreduce/pipeline.h"
#include "ratings/rating_delta.h"
#include "sim/hybrid_similarity.h"
#include "sim/incremental_peer_graph.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"
#include "sim/profile_similarity.h"
#include "sim/rating_similarity.h"
#include "sim/semantic_similarity.h"
#include "sim/similarity_matrix.h"

namespace fairrec {
namespace {

/// One shared synthetic world for the whole suite (expensive to build).
class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig config;
    config.num_patients = 120;
    config.num_documents = 100;
    config.num_clusters = 5;
    config.rating_density = 0.15;
    config.seed = 20170417;  // ICDE 2017 week
    scenario_ = new Scenario(std::move(BuildScenario(config)).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  static const Scenario& scenario() { return *scenario_; }

  static RecommenderOptions DefaultRecOptions() {
    RecommenderOptions options;
    options.peers.delta = 0.55;  // shifted-Pearson scale
    options.top_k = 8;
    return options;
  }

  static Scenario* scenario_;
};

Scenario* EndToEndTest::scenario_ = nullptr;

TEST_F(EndToEndTest, RatingsPathProducesFairSelection) {
  RatingSimilarityOptions sim_options;
  sim_options.shift_to_unit_interval = true;
  const RatingSimilarity similarity(&scenario().ratings, sim_options);
  const Recommender recommender =
      Recommender::ForSimilarityScan(&scenario().ratings, &similarity,
                                     DefaultRecOptions());
  const GroupRecommender group_rec(&recommender, {});
  const Group group = scenario().MakeCohesiveGroup(4, 42);

  const FairnessHeuristic heuristic;
  const Selection selection =
      std::move(group_rec.RecommendFair(group, 6, heuristic)).ValueOrDie();
  EXPECT_EQ(selection.items.size(), 6u);
  EXPECT_DOUBLE_EQ(selection.score.fairness, 1.0);  // z=6 >= |G|=4 (Prop. 1)
  const std::set<ItemId> unique(selection.items.begin(), selection.items.end());
  EXPECT_EQ(unique.size(), 6u);
  // Nothing recommended that any member already rated.
  for (const ItemId item : selection.items) {
    for (const UserId u : group) {
      EXPECT_FALSE(scenario().ratings.HasRating(u, item));
    }
  }
}

TEST_F(EndToEndTest, AllThreeSimilarityMeasuresDriveTheSamePipeline) {
  const Group group = scenario().MakeRandomGroup(3, 7);

  RatingSimilarityOptions rs_options;
  rs_options.shift_to_unit_interval = true;
  const RatingSimilarity rs(&scenario().ratings, rs_options);
  const auto cs = std::move(ProfileSimilarity::Create(
                                scenario().cohort.profiles,
                                scenario().ontology.ontology))
                      .ValueOrDie();
  const SemanticSimilarity ss(&scenario().cohort.profiles,
                              &scenario().ontology.ontology);

  struct Case {
    const UserSimilarity* sim;
    double delta;
  };
  const std::vector<Case> cases{{&rs, 0.55}, {cs.get(), 0.15}, {&ss, 0.15}};
  for (const Case& c : cases) {
    RecommenderOptions options = DefaultRecOptions();
    options.peers.delta = c.delta;
    const Recommender recommender =
      Recommender::ForSimilarityScan(&scenario().ratings, c.sim, options);
    const GroupRecommender group_rec(&recommender, {});
    const auto context = group_rec.BuildContext(group);
    ASSERT_TRUE(context.ok()) << c.sim->name();
    EXPECT_GT(context->num_candidates(), 0) << c.sim->name();
    const FairnessHeuristic heuristic;
    const auto selection = heuristic.Select(*context, 5);
    ASSERT_TRUE(selection.ok()) << c.sim->name();
    EXPECT_EQ(selection->items.size(), 5u) << c.sim->name();
  }
}

TEST_F(EndToEndTest, HybridSimilarityEndToEnd) {
  RatingSimilarityOptions rs_options;
  rs_options.shift_to_unit_interval = true;
  const RatingSimilarity rs(&scenario().ratings, rs_options);
  const auto cs = std::move(ProfileSimilarity::Create(
                                scenario().cohort.profiles,
                                scenario().ontology.ontology))
                      .ValueOrDie();
  const SemanticSimilarity ss(&scenario().cohort.profiles,
                              &scenario().ontology.ontology);
  const auto hybrid =
      std::move(HybridSimilarity::Create(
                    {{&rs, 0.5}, {cs.get(), 0.25}, {&ss, 0.25}}))
          .ValueOrDie();

  RecommenderOptions options = DefaultRecOptions();
  options.peers.delta = 0.35;
  const Recommender recommender =
      Recommender::ForSimilarityScan(&scenario().ratings, hybrid.get(), options);
  const GroupRecommender group_rec(&recommender, {});
  const Group group = scenario().MakeCohesiveGroup(3, 99);
  const FairnessHeuristic heuristic;
  const Selection selection =
      std::move(group_rec.RecommendFair(group, 5, heuristic)).ValueOrDie();
  EXPECT_EQ(selection.items.size(), 5u);
  EXPECT_DOUBLE_EQ(selection.score.fairness, 1.0);
}

TEST_F(EndToEndTest, PrecomputedMatrixAgreesWithDirectSimilarity) {
  const SemanticSimilarity ss(&scenario().cohort.profiles,
                              &scenario().ontology.ontology);
  const auto cached = std::move(SimilarityMatrix::Precompute(
                                    ss, scenario().ratings.num_users()))
                          .ValueOrDie();
  RecommenderOptions options = DefaultRecOptions();
  options.peers.delta = 0.15;
  const Group group = scenario().MakeRandomGroup(3, 5);

  const Recommender direct =
      Recommender::ForSimilarityScan(&scenario().ratings, &ss, options);
  const Recommender precomputed =
      Recommender::ForSimilarityScan(&scenario().ratings, cached.get(), options);
  const GroupRecommender direct_rec(&direct, {});
  const GroupRecommender cached_rec(&precomputed, {});
  const FairnessHeuristic heuristic;
  const Selection a =
      std::move(direct_rec.RecommendFair(group, 4, heuristic)).ValueOrDie();
  const Selection b =
      std::move(cached_rec.RecommendFair(group, 4, heuristic)).ValueOrDie();
  EXPECT_EQ(a.items, b.items);
}

TEST_F(EndToEndTest, SparsePeerGraphServingPathMatchesDenseTriangle) {
  // The retired path: precompute the full U^2 triangle, scan it per member.
  // The serving path: the engine emits the thresholded peer graph directly.
  // Both finish Pearson in the same engine, so contexts and selections must
  // agree exactly.
  RatingSimilarityOptions rs_options;
  rs_options.shift_to_unit_interval = true;
  const RecommenderOptions rec_options = DefaultRecOptions();

  const RatingSimilarity base(&scenario().ratings, rs_options);
  const auto cached =
      std::move(SimilarityMatrix::Precompute(base,
                                             scenario().ratings.num_users()))
          .ValueOrDie();
  const Recommender dense =
      Recommender::ForSimilarityScan(&scenario().ratings, cached.get(), rec_options);
  const GroupRecommender dense_rec(&dense, {});

  PeerIndexOptions peer_options;
  peer_options.delta = rec_options.peers.delta;
  const PairwiseSimilarityEngine engine(&scenario().ratings, rs_options);
  const PeerIndex peers =
      std::move(engine.BuildPeerIndex(peer_options)).ValueOrDie();
  const GroupRecommender sparse_rec(&scenario().ratings, &peers, rec_options);

  const FairnessHeuristic heuristic;
  for (const uint64_t seed : {5u, 42u, 99u}) {
    const Group group = scenario().MakeRandomGroup(4, seed);
    const GroupContext dense_ctx =
        std::move(dense_rec.BuildContext(group)).ValueOrDie();
    const GroupContext sparse_ctx =
        std::move(sparse_rec.BuildContext(group)).ValueOrDie();
    ASSERT_EQ(sparse_ctx.num_candidates(), dense_ctx.num_candidates());
    for (int32_t c = 0; c < dense_ctx.num_candidates(); ++c) {
      EXPECT_EQ(sparse_ctx.candidate(c).item, dense_ctx.candidate(c).item);
      EXPECT_EQ(sparse_ctx.candidate(c).group_relevance,
                dense_ctx.candidate(c).group_relevance);
      EXPECT_EQ(sparse_ctx.candidate(c).member_relevance,
                dense_ctx.candidate(c).member_relevance);
    }
    const Selection a =
        std::move(heuristic.Select(sparse_ctx, 6)).ValueOrDie();
    const Selection b = std::move(heuristic.Select(dense_ctx, 6)).ValueOrDie();
    EXPECT_EQ(a.items, b.items) << "seed=" << seed;
  }
}

TEST_F(EndToEndTest, IncrementalDeltaRefreshesTheServedPeerGraph) {
  // The serving wiring of incremental maintenance: GroupRecommender holds
  // whatever index() snapshot it was given; after an ApplyDelta the next
  // snapshot must serve exactly what a from-scratch build on the post-delta
  // corpus would, while the old snapshot stays valid for in-flight queries.
  RatingSimilarityOptions rs_options;
  rs_options.shift_to_unit_interval = true;
  const RecommenderOptions rec_options = DefaultRecOptions();

  IncrementalPeerGraphOptions inc_options;
  inc_options.similarity = rs_options;
  inc_options.peers.delta = rec_options.peers.delta;
  IncrementalPeerGraph graph =
      std::move(IncrementalPeerGraph::Build(scenario().ratings, inc_options))
          .ValueOrDie();
  const std::shared_ptr<const PeerIndex> before = graph.index();

  // A burst of arrivals: fresh ratings from existing patients plus one
  // brand-new patient who co-rates popular documents.
  RatingDelta delta;
  const UserId newcomer = scenario().ratings.num_users();
  int added = 0;
  for (ItemId i = 0; i < scenario().ratings.num_items() && added < 12; ++i) {
    if (scenario().ratings.ItemDegree(i) < 3) continue;
    ASSERT_TRUE(delta.Add(newcomer, i, static_cast<Rating>(1 + added % 5)).ok());
    const auto column = scenario().ratings.UsersWhoRated(i);
    const UserId existing = column[0].user;
    const Rating flipped =
        scenario().ratings.GetRating(existing, i).value() < 3 ? 5 : 1;
    ASSERT_TRUE(delta.Add(existing, i, flipped).ok());  // an update
    ++added;
  }
  ASSERT_TRUE(graph.ApplyDelta(delta).ok());
  const std::shared_ptr<const PeerIndex> after = graph.index();
  EXPECT_NE(before.get(), after.get());
  EXPECT_EQ(after->num_users(), scenario().ratings.num_users() + 1);

  // From-scratch reference on the post-delta corpus.
  const PairwiseSimilarityEngine engine(&graph.matrix(), rs_options);
  PeerIndexOptions peer_options;
  peer_options.delta = rec_options.peers.delta;
  const PeerIndex rebuilt =
      std::move(engine.BuildPeerIndex(peer_options)).ValueOrDie();

  const GroupRecommender served(&graph.matrix(), after.get(), rec_options);
  const GroupRecommender reference(&graph.matrix(), &rebuilt, rec_options);
  const FairnessHeuristic heuristic;
  for (const uint64_t seed : {7u, 21u}) {
    const Group group = scenario().MakeRandomGroup(4, seed);
    const GroupContext served_ctx =
        std::move(served.BuildContext(group)).ValueOrDie();
    const GroupContext reference_ctx =
        std::move(reference.BuildContext(group)).ValueOrDie();
    ASSERT_EQ(served_ctx.num_candidates(), reference_ctx.num_candidates());
    for (int32_t c = 0; c < reference_ctx.num_candidates(); ++c) {
      EXPECT_EQ(served_ctx.candidate(c).item, reference_ctx.candidate(c).item);
      EXPECT_EQ(served_ctx.candidate(c).group_relevance,
                reference_ctx.candidate(c).group_relevance);
    }
    const Selection a =
        std::move(heuristic.Select(served_ctx, 6)).ValueOrDie();
    const Selection b =
        std::move(heuristic.Select(reference_ctx, 6)).ValueOrDie();
    EXPECT_EQ(a.items, b.items) << "seed=" << seed;
  }
  // The pre-delta snapshot still answers (old population, old lists).
  EXPECT_EQ(before->num_users(), scenario().ratings.num_users());
}

TEST_F(EndToEndTest, PipelinePeerIndexServesFollowUpQueries) {
  // The §IV flow's Job 2 artifact plugs straight back into the serial layer:
  // a follow-up query for the same group through RelevanceForGroup(group,
  // peer_index) must reproduce the pipeline's context.
  const Group group = scenario().MakeCohesiveGroup(3, 123);
  PipelineOptions options;
  options.similarity.shift_to_unit_interval = true;
  options.delta = 0.55;
  options.top_k = 8;
  const GroupRecommendationPipeline pipeline(options);
  const PipelineResult mr =
      std::move(pipeline.Run(scenario().ratings, group, 6)).ValueOrDie();
  EXPECT_EQ(mr.peer_index.num_entries(), mr.num_similarity_pairs);

  RatingSimilarityOptions rs_options;
  rs_options.shift_to_unit_interval = true;
  const RatingSimilarity rs(&scenario().ratings, rs_options);
  RecommenderOptions rec_options;
  rec_options.peers.delta = 0.55;
  rec_options.top_k = 8;
  const Recommender recommender =
      Recommender::ForSimilarityScan(&scenario().ratings, &rs, rec_options);
  GroupContextOptions ctx_options;
  ctx_options.top_k = 8;
  const GroupRecommender group_rec(&recommender, ctx_options);
  const GroupContext replay =
      std::move(group_rec.BuildContext(group, mr.peer_index)).ValueOrDie();

  ASSERT_EQ(replay.num_candidates(), mr.context.num_candidates());
  for (int32_t c = 0; c < replay.num_candidates(); ++c) {
    EXPECT_EQ(replay.candidate(c).item, mr.context.candidate(c).item);
    EXPECT_NEAR(replay.candidate(c).group_relevance,
                mr.context.candidate(c).group_relevance, 1e-9);
  }
}

TEST_F(EndToEndTest, MinVetoNeverExceedsAverageRelevance) {
  RatingSimilarityOptions rs_options;
  rs_options.shift_to_unit_interval = true;
  const RatingSimilarity rs(&scenario().ratings, rs_options);
  const Recommender recommender =
      Recommender::ForSimilarityScan(&scenario().ratings, &rs, DefaultRecOptions());
  const Group group = scenario().MakeRandomGroup(4, 17);

  GroupContextOptions min_options;
  min_options.aggregation = AggregationKind::kMinimum;
  GroupContextOptions avg_options;
  avg_options.aggregation = AggregationKind::kAverage;
  const GroupRecommender min_rec(&recommender, min_options);
  const GroupRecommender avg_rec(&recommender, avg_options);
  const GroupContext min_ctx = std::move(min_rec.BuildContext(group)).ValueOrDie();
  const GroupContext avg_ctx = std::move(avg_rec.BuildContext(group)).ValueOrDie();
  ASSERT_EQ(min_ctx.num_candidates(), avg_ctx.num_candidates());
  for (int32_t c = 0; c < min_ctx.num_candidates(); ++c) {
    EXPECT_LE(min_ctx.candidate(c).group_relevance,
              avg_ctx.candidate(c).group_relevance + 1e-12);
  }
}

TEST_F(EndToEndTest, CohesiveGroupsAreEasierToSatisfyThanRandom) {
  RatingSimilarityOptions rs_options;
  rs_options.shift_to_unit_interval = true;
  const RatingSimilarity rs(&scenario().ratings, rs_options);
  const Recommender recommender =
      Recommender::ForSimilarityScan(&scenario().ratings, &rs, DefaultRecOptions());
  const GroupRecommender group_rec(&recommender, {});
  const FairnessHeuristic heuristic;

  double cohesive_satisfaction = 0.0;
  double random_satisfaction = 0.0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    const GroupContext cohesive_ctx =
        std::move(group_rec.BuildContext(
                      scenario().MakeCohesiveGroup(4, 1000 + t)))
            .ValueOrDie();
    const GroupContext random_ctx =
        std::move(
            group_rec.BuildContext(scenario().MakeRandomGroup(4, 2000 + t)))
            .ValueOrDie();
    const Selection cs = std::move(heuristic.Select(cohesive_ctx, 6)).ValueOrDie();
    const Selection rs_sel = std::move(heuristic.Select(random_ctx, 6)).ValueOrDie();
    cohesive_satisfaction +=
        GroupSatisfactionByItems(cohesive_ctx, cs.items).min;
    random_satisfaction +=
        GroupSatisfactionByItems(random_ctx, rs_sel.items).min;
  }
  // Cohesive groups share taste, so the least-satisfied member does better
  // on average (the motivation for fairness-aware selection in
  // heterogeneous groups).
  EXPECT_GE(cohesive_satisfaction, random_satisfaction - 0.5);
}

TEST_F(EndToEndTest, MapReducePipelineAgreesWithSerialOnScenario) {
  const Group group = scenario().MakeCohesiveGroup(3, 77);
  PipelineOptions options;
  options.similarity.shift_to_unit_interval = true;
  options.delta = 0.55;
  options.top_k = 8;
  const GroupRecommendationPipeline pipeline(options);
  const PipelineResult mr =
      std::move(pipeline.Run(scenario().ratings, group, 6)).ValueOrDie();

  RatingSimilarityOptions rs_options;
  rs_options.shift_to_unit_interval = true;
  const RatingSimilarity rs(&scenario().ratings, rs_options);
  RecommenderOptions rec_options;
  rec_options.peers.delta = 0.55;
  rec_options.top_k = 8;
  const Recommender recommender =
      Recommender::ForSimilarityScan(&scenario().ratings, &rs, rec_options);
  GroupContextOptions ctx_options;
  ctx_options.top_k = 8;  // must match PipelineOptions::top_k
  const GroupRecommender group_rec(&recommender, ctx_options);
  const FairnessHeuristic heuristic;
  const GroupContext serial_ctx =
      std::move(group_rec.BuildContext(group)).ValueOrDie();
  const Selection serial = std::move(heuristic.Select(serial_ctx, 6)).ValueOrDie();
  EXPECT_EQ(mr.selection.items, serial.items);
}

TEST_F(EndToEndTest, SelectorsRankedByValueOnRealScenario) {
  RatingSimilarityOptions rs_options;
  rs_options.shift_to_unit_interval = true;
  const RatingSimilarity rs(&scenario().ratings, rs_options);
  const Recommender recommender =
      Recommender::ForSimilarityScan(&scenario().ratings, &rs, DefaultRecOptions());
  const GroupRecommender group_rec(&recommender, {});
  const GroupContext full_ctx =
      std::move(group_rec.BuildContext(scenario().MakeRandomGroup(4, 31)))
          .ValueOrDie();
  const GroupContext ctx = full_ctx.RestrictToTopM(14);

  const BruteForceSelector brute_force;
  const FairnessHeuristic heuristic;
  const GreedyValueSelector greedy;
  const Selection exact = std::move(brute_force.Select(ctx, 5)).ValueOrDie();
  const Selection h = std::move(heuristic.Select(ctx, 5)).ValueOrDie();
  const Selection g = std::move(greedy.Select(ctx, 5)).ValueOrDie();
  EXPECT_GE(exact.score.value, h.score.value - 1e-9);
  EXPECT_GE(exact.score.value, g.score.value - 1e-9);
}

}  // namespace
}  // namespace fairrec
