#include "mapreduce/jobs.h"

#include <algorithm>
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "cf/peer_finder.h"
#include "cf/relevance_estimator.h"
#include "common/random.h"
#include "ratings/rating_matrix.h"
#include "sim/pairwise_engine.h"

namespace fairrec {
namespace {

RatingMatrix RandomMatrix(uint64_t seed, int32_t users = 20, int32_t items = 30,
                          double density = 0.4) {
  Rng rng(seed);
  RatingMatrixBuilder builder;
  builder.Reserve(users, items);
  for (UserId u = 0; u < users; ++u) {
    for (ItemId i = 0; i < items; ++i) {
      if (rng.NextBool(density)) {
        EXPECT_TRUE(
            builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5))).ok());
      }
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

/// The engine's similarity for the unordered pair {a, b} — the reference the
/// moment-sharded jobs must reproduce bit-for-bit.
double EngineSim(const std::vector<double>& triangle, UserId a, UserId b,
                 int32_t num_users) {
  if (a > b) std::swap(a, b);
  return triangle[PairwiseSimilarityEngine::PackedTriangleIndex(a, b,
                                                                num_users)];
}

TEST(UserMeanJobTest, MatchesMatrixMeans) {
  const RatingMatrix m = RandomMatrix(42);
  const std::vector<double> means =
      RunUserMeanJob(m.ToTriples(), m.num_users(), {});
  ASSERT_EQ(means.size(), static_cast<size_t>(m.num_users()));
  for (UserId u = 0; u < m.num_users(); ++u) {
    EXPECT_DOUBLE_EQ(means[static_cast<size_t>(u)], m.UserMean(u)) << "u=" << u;
  }
}

TEST(Job1Test, RejectsBadGroups) {
  const RatingMatrix m = RandomMatrix(1);
  EXPECT_TRUE(RunJob1(m.ToTriples(), {}, m.num_users(), {})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RunJob1(m.ToTriples(), {999}, m.num_users(), {})
                  .status()
                  .IsInvalidArgument());
}

TEST(Job1Test, RejectsBadShardCounts) {
  const RatingMatrix m = RandomMatrix(2);
  EXPECT_TRUE(RunJob1(m.ToTriples(), {0}, m.num_users(), {}, 0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RunJob1(m.ToTriples(), {0}, m.num_users(), {}, -3)
                  .status()
                  .IsInvalidArgument());
}

TEST(Job1Test, CandidateStreamEqualsItemsUnratedByAll) {
  const RatingMatrix m = RandomMatrix(7);
  const Group group{0, 3, 5};
  const Job1Output out =
      std::move(RunJob1(m.ToTriples(), group, m.num_users(), {})).ValueOrDie();

  std::vector<ItemId> candidates;
  for (const auto& kv : out.candidate_items) candidates.push_back(kv.key);
  // Job 1 only sees *rated* items; ItemsUnratedByAll also returns items with
  // no ratings at all. Those cannot be recommended by Eq. 1 anyway, so the
  // MR stream must equal the serial list filtered to rated items.
  std::vector<ItemId> expected;
  for (const ItemId i : m.ItemsUnratedByAll(group)) {
    if (m.ItemDegree(i) > 0) expected.push_back(i);
  }
  EXPECT_EQ(candidates, expected);
}

TEST(Job1Test, CandidateRaterListsMatchMatrixColumns) {
  const RatingMatrix m = RandomMatrix(8);
  const Group group{1, 2};
  const Job1Output out =
      std::move(RunJob1(m.ToTriples(), group, m.num_users(), {})).ValueOrDie();
  for (const auto& kv : out.candidate_items) {
    const auto column = m.UsersWhoRated(kv.key);
    std::vector<UserRating> expected(column.begin(), column.end());
    std::vector<UserRating> actual = kv.value;
    std::sort(actual.begin(), actual.end(),
              [](const UserRating& a, const UserRating& b) {
                return a.user < b.user;
              });
    EXPECT_EQ(actual, expected) << "item " << kv.key;
  }
}

TEST(Job1Test, MomentPairsOnlyMemberOutsidePairs) {
  const RatingMatrix m = RandomMatrix(9);
  const Group group{0, 4};
  const Job1Output out =
      std::move(RunJob1(m.ToTriples(), group, m.num_users(), {})).ValueOrDie();
  for (const auto& kv : out.partial_moments) {
    EXPECT_TRUE(kv.key.first == 0 || kv.key.first == 4);
    EXPECT_TRUE(kv.key.second != 0 && kv.key.second != 4);
    EXPECT_GT(kv.value.n, 0);
  }
}

TEST(Job1Test, MomentCountsEqualCoRatedItemCounts) {
  const RatingMatrix m = RandomMatrix(10);
  const Group group{2};
  const Job1Output out =
      std::move(RunJob1(m.ToTriples(), group, m.num_users(), {})).ValueOrDie();
  // With one shard there is exactly one moment record per co-rating pair,
  // whose n is the number of co-rated member-rated items; co_rating_records
  // counts what the retired per-item record stream would have shipped.
  std::map<UserPairKey, int64_t> overlap;
  int64_t total_n = 0;
  for (const auto& kv : out.partial_moments) {
    EXPECT_EQ(overlap.count(kv.key), 0u) << "duplicate pair record";
    overlap[kv.key] = kv.value.n;
    total_n += kv.value.n;
  }
  EXPECT_EQ(total_n, out.co_rating_records);
  for (UserId v = 0; v < m.num_users(); ++v) {
    if (v == 2) continue;
    int64_t expected = 0;
    for (const ItemRating& entry : m.ItemsRatedBy(2)) {
      if (m.GetRating(v, entry.item).has_value()) ++expected;
    }
    const auto it = overlap.find({2, v});
    EXPECT_EQ(it == overlap.end() ? 0 : it->second, expected) << "peer " << v;
  }
}

TEST(Job1Test, ShardedMomentsMergeToSingleShardMoments) {
  const RatingMatrix m = RandomMatrix(15);
  const Group group{1, 6};
  const Job1Output single =
      std::move(RunJob1(m.ToTriples(), group, m.num_users(), {}, 1))
          .ValueOrDie();
  for (const int32_t shards : {2, 3, 7, 64}) {
    const Job1Output sharded =
        std::move(RunJob1(m.ToTriples(), group, m.num_users(), {}, shards))
            .ValueOrDie();
    EXPECT_EQ(sharded.co_rating_records, single.co_rating_records);
    // Same co-ratings, different grouping: merging each pair's shard
    // partials must reproduce the single-shard moments exactly (integer
    // ratings make the sums order-independent).
    std::map<UserPairKey, PairMoments> merged;
    std::map<UserPairKey, int64_t> records_per_pair;
    for (const auto& kv : sharded.partial_moments) {
      merged[kv.key].Merge(kv.value);
      records_per_pair[kv.key] += 1;
    }
    ASSERT_EQ(merged.size(), single.partial_moments.size()) << shards;
    for (const auto& kv : single.partial_moments) {
      const auto it = merged.find(kv.key);
      ASSERT_NE(it, merged.end());
      EXPECT_EQ(it->second, kv.value)
          << "pair (" << kv.key.first << "," << kv.key.second << ") shards "
          << shards;
      EXPECT_LE(records_per_pair[kv.key], static_cast<int64_t>(shards));
    }
  }
}

TEST(Job2Test, MatchesEngineSimilarityAboveDelta) {
  const RatingMatrix m = RandomMatrix(11);
  const Group group{0, 1};
  const double delta = 0.2;
  const Job1Output job1 =
      std::move(RunJob1(m.ToTriples(), group, m.num_users(), {})).ValueOrDie();
  const std::vector<double> means =
      RunUserMeanJob(m.ToTriples(), m.num_users(), {});

  for (const bool intersection : {false, true}) {
    RatingSimilarityOptions sim_options;
    sim_options.intersection_means = intersection;
    const auto job2 = RunJob2(job1.partial_moments, means, sim_options,
                              delta, {});
    const PairwiseSimilarityEngine engine(&m, sim_options);
    const std::vector<double> triangle =
        std::move(engine.ComputeAll()).ValueOrDie();

    // Every MR pair must match the engine value bit-for-bit (same moments,
    // same finish); every engine-qualifying pair must be present.
    std::map<UserPairKey, double> mr;
    for (const auto& kv : job2) mr[kv.key] = kv.value;
    for (const UserId g : group) {
      for (UserId v = 0; v < m.num_users(); ++v) {
        if (v == group[0] || v == group[1]) continue;
        const double expected = EngineSim(triangle, g, v, m.num_users());
        const auto it = mr.find({g, v});
        if (expected >= delta) {
          ASSERT_NE(it, mr.end()) << "missing pair (" << g << "," << v << ")";
          EXPECT_EQ(it->second, expected) << "(" << g << "," << v << ")";
        } else {
          EXPECT_EQ(it, mr.end()) << "unexpected pair (" << g << "," << v << ")";
        }
      }
    }
  }
}

TEST(Job2Test, ShardCountDoesNotChangeThresholdedPairs) {
  const RatingMatrix m = RandomMatrix(16);
  const Group group{0, 9};
  const double delta = 0.15;
  const std::vector<double> means =
      RunUserMeanJob(m.ToTriples(), m.num_users(), {});
  RatingSimilarityOptions sim_options;
  sim_options.shift_to_unit_interval = true;

  const Job1Output base =
      std::move(RunJob1(m.ToTriples(), group, m.num_users(), {}, 1))
          .ValueOrDie();
  const auto reference =
      RunJob2(base.partial_moments, means, sim_options, delta, {});
  ASSERT_FALSE(reference.empty());
  for (const int32_t shards : {2, 5, 13}) {
    const Job1Output sharded =
        std::move(RunJob1(m.ToTriples(), group, m.num_users(), {}, shards))
            .ValueOrDie();
    const auto job2 =
        RunJob2(sharded.partial_moments, means, sim_options, delta, {});
    // Integer ratings: shard merges are exact, so the thresholded stream is
    // identical — keys and values — for every layout.
    ASSERT_EQ(job2.size(), reference.size()) << shards;
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(job2[i].key, reference[i].key) << shards;
      EXPECT_EQ(job2[i].value, reference[i].value) << shards;
    }
  }
}

TEST(Job2PeerIndexTest, PeerListModeMatchesRecordMode) {
  const RatingMatrix m = RandomMatrix(21);
  const Group group{0, 1};
  const double delta = 0.2;
  const Job1Output job1 =
      std::move(RunJob1(m.ToTriples(), group, m.num_users(), {})).ValueOrDie();
  const std::vector<double> means =
      RunUserMeanJob(m.ToTriples(), m.num_users(), {});
  RatingSimilarityOptions sim_options;

  const auto records =
      RunJob2(job1.partial_moments, means, sim_options, delta, {});
  MapReduceStats stats;
  const PeerIndex index =
      std::move(RunJob2PeerIndex(job1.partial_moments, means, sim_options,
                                 delta, m.num_users(), 0, {}, &stats))
          .ValueOrDie();

  // Same edges, same values, re-keyed per member in BetterPeer order.
  EXPECT_EQ(index.num_entries(), static_cast<int64_t>(records.size()));
  EXPECT_EQ(stats.output_records, index.num_entries());
  std::vector<std::vector<Peer>> expected(static_cast<size_t>(m.num_users()));
  for (const auto& kv : records) {
    expected[static_cast<size_t>(kv.key.first)].push_back(
        {kv.key.second, kv.value});
  }
  for (auto& list : expected) std::sort(list.begin(), list.end(), BetterPeer);
  for (UserId u = 0; u < m.num_users(); ++u) {
    const auto span = index.PeersOf(u);
    EXPECT_EQ(std::vector<Peer>(span.begin(), span.end()),
              expected[static_cast<size_t>(u)])
        << "u=" << u;
  }

  // Job 3 over the artifact must equal Job 3 over the record stream.
  const auto from_records = RunJob3(job1.candidate_items, records, group,
                                    AggregationKind::kAverage, {});
  const auto from_index = RunJob3(job1.candidate_items, index, group,
                                  AggregationKind::kAverage, {});
  ASSERT_EQ(from_index.size(), from_records.size());
  for (size_t i = 0; i < from_records.size(); ++i) {
    EXPECT_EQ(from_index[i].key, from_records[i].key);
    EXPECT_EQ(from_index[i].value.group_relevance,
              from_records[i].value.group_relevance);
    for (size_t g = 0; g < group.size(); ++g) {
      const double a = from_index[i].value.member_relevance[g];
      const double b = from_records[i].value.member_relevance[g];
      EXPECT_TRUE((std::isnan(a) && std::isnan(b)) || a == b)
          << "item " << from_index[i].key << " member " << g;
    }
  }
}

TEST(Job2PeerIndexTest, MemberCapKeepsBestPeers) {
  const RatingMatrix m = RandomMatrix(22);
  const Group group{3};
  const double delta = 0.0;
  const Job1Output job1 =
      std::move(RunJob1(m.ToTriples(), group, m.num_users(), {})).ValueOrDie();
  const std::vector<double> means =
      RunUserMeanJob(m.ToTriples(), m.num_users(), {});

  const PeerIndex unbounded =
      std::move(RunJob2PeerIndex(job1.partial_moments, means, {}, delta,
                                 m.num_users()))
          .ValueOrDie();
  const PeerIndex capped =
      std::move(RunJob2PeerIndex(job1.partial_moments, means, {}, delta,
                                 m.num_users(), /*max_peers_per_member=*/2))
          .ValueOrDie();

  const auto full = unbounded.PeersOf(3);
  const auto top = capped.PeersOf(3);
  ASSERT_GE(full.size(), top.size());
  ASSERT_LE(top.size(), 2u);
  // The capped list is exactly the prefix of the unbounded one.
  for (size_t i = 0; i < top.size(); ++i) EXPECT_EQ(top[i], full[i]);
}

TEST(Job3Test, MatchesSerialRelevanceEstimator) {
  const RatingMatrix m = RandomMatrix(12);
  const Group group{0, 5};
  const double delta = 0.1;
  const Job1Output job1 =
      std::move(RunJob1(m.ToTriples(), group, m.num_users(), {})).ValueOrDie();
  const std::vector<double> means =
      RunUserMeanJob(m.ToTriples(), m.num_users(), {});
  RatingSimilarityOptions sim_options;
  sim_options.shift_to_unit_interval = true;
  const auto job2 =
      RunJob2(job1.partial_moments, means, sim_options, delta, {});
  const auto job3 = RunJob3(job1.candidate_items, job2, group,
                            AggregationKind::kAverage, {});

  // Serial reference.
  const RatingSimilarity similarity(&m, sim_options);
  PeerFinderOptions peer_options;
  peer_options.delta = delta;
  const PeerFinder finder(&similarity, m.num_users(), peer_options);
  const RelevanceEstimator estimator(&m);

  for (const auto& kv : job3) {
    const ItemId item = kv.key;
    for (size_t g = 0; g < group.size(); ++g) {
      const std::vector<Peer> peers = finder.FindPeers(group[g], group);
      const auto serial_rel = estimator.Estimate(peers, item);
      const double mr_rel = kv.value.member_relevance[g];
      if (serial_rel.has_value()) {
        EXPECT_NEAR(mr_rel, *serial_rel, 1e-9)
            << "item " << item << " member " << group[g];
      } else {
        EXPECT_TRUE(std::isnan(mr_rel)) << "item " << item;
      }
    }
  }
}

TEST(Job3Test, GroupAggregationMatchesKind) {
  const RatingMatrix m = RandomMatrix(13);
  const Group group{3, 7};
  const Job1Output job1 =
      std::move(RunJob1(m.ToTriples(), group, m.num_users(), {})).ValueOrDie();
  const std::vector<double> means =
      RunUserMeanJob(m.ToTriples(), m.num_users(), {});
  RatingSimilarityOptions sim_options;
  sim_options.shift_to_unit_interval = true;
  const auto job2 =
      RunJob2(job1.partial_moments, means, sim_options, 0.1, {});
  const auto min_out = RunJob3(job1.candidate_items, job2, group,
                               AggregationKind::kMinimum, {});
  for (const auto& kv : min_out) {
    if (!kv.value.defined_for_all) continue;
    EXPECT_DOUBLE_EQ(kv.value.group_relevance,
                     std::min(kv.value.member_relevance[0],
                              kv.value.member_relevance[1]));
  }
}

TEST(JobsTest, ParallelismDoesNotChangeOutputs) {
  const RatingMatrix m = RandomMatrix(14);
  const Group group{0, 2};
  MapReduceOptions serial;
  serial.num_workers = 1;
  serial.num_map_shards = 1;
  serial.num_reduce_partitions = 1;
  MapReduceOptions parallel;
  parallel.num_workers = 4;
  parallel.num_map_shards = 7;
  parallel.num_reduce_partitions = 3;

  for (const int32_t shards : {1, 4}) {
    const Job1Output a =
        std::move(RunJob1(m.ToTriples(), group, m.num_users(), serial, shards))
            .ValueOrDie();
    const Job1Output b =
        std::move(RunJob1(m.ToTriples(), group, m.num_users(), parallel, shards))
            .ValueOrDie();
    ASSERT_EQ(a.candidate_items.size(), b.candidate_items.size());
    for (size_t i = 0; i < a.candidate_items.size(); ++i) {
      EXPECT_EQ(a.candidate_items[i].key, b.candidate_items[i].key);
    }
    // Moment streams are canonically sorted and folded at the Job 1
    // boundary, so they must be identical across partition layouts.
    EXPECT_EQ(a.co_rating_records, b.co_rating_records);
    ASSERT_EQ(a.partial_moments.size(), b.partial_moments.size());
    for (size_t i = 0; i < a.partial_moments.size(); ++i) {
      EXPECT_EQ(a.partial_moments[i].key, b.partial_moments[i].key);
      EXPECT_EQ(a.partial_moments[i].value, b.partial_moments[i].value);
    }
  }
}

}  // namespace
}  // namespace fairrec
