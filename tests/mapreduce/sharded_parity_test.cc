// Sharded-vs-in-memory parity: the moment-sharded MapReduce flow (Job 1
// moment combine -> Job 2 moment merge -> PeerIndex) must reproduce the
// in-memory engine's peer graph byte-for-byte, for every simulated shard
// count. The Job 1 stream is directional (member -> outside user), so the
// expected member row is the engine's row with fellow group members removed;
// non-member rows must be empty.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "mapreduce/jobs.h"
#include "mapreduce/pipeline.h"
#include "ratings/rating_matrix.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"

namespace fairrec {
namespace {

RatingMatrix ParityCorpus(uint64_t seed, int32_t users = 40, int32_t items = 60,
                          double density = 0.3) {
  Rng rng(seed);
  RatingMatrixBuilder builder;
  builder.Reserve(users, items);
  for (UserId u = 0; u < users; ++u) {
    for (ItemId i = 0; i < items; ++i) {
      if (rng.NextBool(density)) {
        EXPECT_TRUE(
            builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5))).ok());
      }
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

/// The engine's peer row for `u`, with group members removed and (when
/// cap > 0) truncated to the best cap entries — exactly what the
/// member-directional sharded build must store for a group member.
std::vector<Peer> ExpectedMemberRow(const PeerIndex& engine_index, UserId u,
                                    const Group& group, int32_t cap) {
  std::vector<Peer> expected;
  for (const Peer& p : engine_index.PeersOf(u)) {
    if (std::find(group.begin(), group.end(), p.user) == group.end()) {
      expected.push_back(p);
    }
  }
  if (cap > 0 && expected.size() > static_cast<size_t>(cap)) {
    expected.resize(static_cast<size_t>(cap));
  }
  return expected;
}

void ExpectIndexMatchesEngine(const PeerIndex& sharded,
                              const PeerIndex& engine_index,
                              const Group& group, int32_t cap,
                              int32_t num_users, int32_t shards) {
  for (UserId u = 0; u < num_users; ++u) {
    const auto row = sharded.PeersOf(u);
    const std::vector<Peer> actual(row.begin(), row.end());
    if (std::find(group.begin(), group.end(), u) == group.end()) {
      EXPECT_TRUE(actual.empty())
          << "non-member " << u << " has peers (shards=" << shards << ")";
      continue;
    }
    // Byte-identical: same peers, same order, same similarity bits.
    EXPECT_EQ(actual, ExpectedMemberRow(engine_index, u, group, cap))
        << "member " << u << " shards=" << shards;
  }
}

class ShardedParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    matrix_ = ParityCorpus(20170417);
    group_ = {2, 11, 27};
    means_ = RunUserMeanJob(matrix_.ToTriples(), matrix_.num_users(), {});
  }

  PeerIndex EngineIndex(const RatingSimilarityOptions& sim_options,
                        double delta) const {
    PeerIndexOptions peer_options;
    peer_options.delta = delta;
    const PairwiseSimilarityEngine engine(&matrix_, sim_options);
    return std::move(engine.BuildPeerIndex(peer_options)).ValueOrDie();
  }

  RatingMatrix matrix_;
  Group group_;
  std::vector<double> means_;
};

TEST_F(ShardedParityTest, PeerIndexByteIdenticalAcrossShardCounts) {
  RatingSimilarityOptions sim_options;
  sim_options.shift_to_unit_interval = true;
  const double delta = 0.55;
  const PeerIndex engine_index = EngineIndex(sim_options, delta);

  for (const int32_t shards : {1, 2, 3, 5, 16}) {
    const Job1Output job1 =
        std::move(
            RunJob1(matrix_.ToTriples(), group_, matrix_.num_users(), {}, shards))
            .ValueOrDie();
    const PeerIndex sharded =
        std::move(RunJob2PeerIndex(job1.partial_moments, means_, sim_options,
                                   delta, matrix_.num_users()))
            .ValueOrDie();
    ExpectIndexMatchesEngine(sharded, engine_index, group_, /*cap=*/0,
                             matrix_.num_users(), shards);
  }
}

TEST_F(ShardedParityTest, CappedPeerIndexByteIdenticalAcrossShardCounts) {
  RatingSimilarityOptions sim_options;  // raw Pearson, global means
  const double delta = 0.1;
  const int32_t cap = 4;
  const PeerIndex engine_index = EngineIndex(sim_options, delta);

  for (const int32_t shards : {1, 3, 7}) {
    const Job1Output job1 =
        std::move(
            RunJob1(matrix_.ToTriples(), group_, matrix_.num_users(), {}, shards))
            .ValueOrDie();
    const PeerIndex sharded =
        std::move(RunJob2PeerIndex(job1.partial_moments, means_, sim_options,
                                   delta, matrix_.num_users(), cap))
            .ValueOrDie();
    ExpectIndexMatchesEngine(sharded, engine_index, group_, cap,
                             matrix_.num_users(), shards);
  }
}

TEST_F(ShardedParityTest, DeltaBoundaryBehaviorMatchesEngine) {
  // Def. 1 is an inclusive threshold. Both paths finish the same moments
  // through the same math, so a delta set to a pair's exact similarity bits
  // must include the pair in both, and the next representable double above
  // it must exclude it in both.
  RatingSimilarityOptions sim_options;
  sim_options.shift_to_unit_interval = true;
  const UserId member = group_[0];

  // Pick the member's strongest peer from an unthresholded engine build.
  const PeerIndex open_index = EngineIndex(sim_options, /*delta=*/0.0);
  const auto open_row = open_index.PeersOf(member);
  ASSERT_FALSE(open_row.empty());
  const double boundary = open_row.front().similarity;
  ASSERT_GT(boundary, 0.0);

  const Job1Output job1 =
      std::move(RunJob1(matrix_.ToTriples(), group_, matrix_.num_users(), {}, 3))
          .ValueOrDie();
  for (const bool include : {true, false}) {
    const double delta =
        include ? boundary
                : std::nextafter(boundary, std::numeric_limits<double>::max());
    const PeerIndex engine_index = EngineIndex(sim_options, delta);
    const PeerIndex sharded =
        std::move(RunJob2PeerIndex(job1.partial_moments, means_, sim_options,
                                   delta, matrix_.num_users()))
            .ValueOrDie();
    const auto engine_row = engine_index.PeersOf(member);
    const auto sharded_row = sharded.PeersOf(member);
    const auto has_boundary_peer = [&](std::span<const Peer> row) {
      return std::any_of(row.begin(), row.end(), [&](const Peer& p) {
        return p.similarity == boundary;
      });
    };
    EXPECT_EQ(has_boundary_peer(engine_row), include) << "delta=" << delta;
    EXPECT_EQ(has_boundary_peer(sharded_row), include) << "delta=" << delta;
    EXPECT_EQ(std::vector<Peer>(sharded_row.begin(), sharded_row.end()),
              ExpectedMemberRow(engine_index, member, group_, /*cap=*/0));
  }
}

TEST_F(ShardedParityTest, PipelinePeerIndexInvariantToMomentShards) {
  // The full §IV pipeline, end to end: the emitted CSR artifact, the
  // assembled context, and the Algorithm 1 selection must be identical for
  // every simulated shard layout.
  PipelineOptions options;
  options.similarity.shift_to_unit_interval = true;
  options.delta = 0.55;
  options.top_k = 5;

  PipelineResult reference;
  bool have_reference = false;
  for (const int32_t shards : {1, 2, 6}) {
    options.moment_shards = shards;
    const GroupRecommendationPipeline pipeline(options);
    PipelineResult result =
        std::move(pipeline.Run(matrix_, group_, 4)).ValueOrDie();
    EXPECT_GT(result.num_moment_records, 0);
    EXPECT_GE(result.num_co_rating_records, result.num_moment_records);
    if (!have_reference) {
      reference = std::move(result);
      have_reference = true;
      continue;
    }
    EXPECT_EQ(result.selection.items, reference.selection.items)
        << "shards=" << shards;
    EXPECT_EQ(result.peer_index.num_entries(),
              reference.peer_index.num_entries());
    for (const UserId u : group_) {
      const auto a = result.peer_index.PeersOf(u);
      const auto b = reference.peer_index.PeersOf(u);
      EXPECT_EQ(std::vector<Peer>(a.begin(), a.end()),
                std::vector<Peer>(b.begin(), b.end()))
          << "member " << u << " shards=" << shards;
    }
    ASSERT_EQ(result.context.num_candidates(), reference.context.num_candidates());
    for (int32_t c = 0; c < reference.context.num_candidates(); ++c) {
      EXPECT_EQ(result.context.candidate(c).item,
                reference.context.candidate(c).item);
      EXPECT_EQ(result.context.candidate(c).group_relevance,
                reference.context.candidate(c).group_relevance);
    }
  }
}

TEST_F(ShardedParityTest, MomentShardsCompressTheShuffle) {
  // The scaling story in numbers: the moment boundary ships at most
  // min(pairs * shards, co-ratings) records, and with one shard exactly one
  // record per pair.
  const Job1Output one =
      std::move(RunJob1(matrix_.ToTriples(), group_, matrix_.num_users(), {}, 1))
          .ValueOrDie();
  ASSERT_GT(one.co_rating_records, 0);
  EXPECT_LT(static_cast<int64_t>(one.partial_moments.size()),
            one.co_rating_records);
  const Job1Output many =
      std::move(RunJob1(matrix_.ToTriples(), group_, matrix_.num_users(), {}, 8))
          .ValueOrDie();
  EXPECT_LE(one.partial_moments.size(), many.partial_moments.size());
  EXPECT_LE(static_cast<int64_t>(many.partial_moments.size()),
            many.co_rating_records);
}

}  // namespace
}  // namespace fairrec
