#include "mapreduce/topk_mapreduce.h"

#include <gtest/gtest.h>

#include "cf/top_k.h"
#include "common/random.h"

namespace fairrec {
namespace {

TEST(MapReduceTopKTest, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(MapReduceTopK({}, 5).empty());
  EXPECT_TRUE(MapReduceTopK({{0, 1.0}}, 0).empty());
  EXPECT_TRUE(MapReduceTopK({{0, 1.0}}, -1).empty());
}

TEST(MapReduceTopKTest, SingleRecord) {
  const std::vector<ScoredItem> top = MapReduceTopK({{7, 3.5}}, 3);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], (ScoredItem{7, 3.5}));
}

TEST(MapReduceTopKTest, MatchesCentralizedSelectTopK) {
  Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<ScoredItem> scored;
    const int n = static_cast<int>(rng.UniformInt(1, 2000));
    for (int i = 0; i < n; ++i) {
      scored.push_back({i, static_cast<double>(rng.UniformInt(0, 50))});
    }
    const int k = static_cast<int>(rng.UniformInt(1, 64));
    EXPECT_EQ(MapReduceTopK(scored, k), SelectTopK(scored, k))
        << "trial " << trial << " n=" << n << " k=" << k;
  }
}

TEST(MapReduceTopKTest, PartitionCountDoesNotChangeResult) {
  Rng rng(99);
  std::vector<ScoredItem> scored;
  for (int i = 0; i < 500; ++i) {
    scored.push_back({i, rng.NextDouble() * 10.0});
  }
  const std::vector<ScoredItem> reference = SelectTopK(scored, 25);
  for (const size_t partitions : {1u, 2u, 5u, 16u}) {
    MapReduceOptions options;
    options.num_reduce_partitions = partitions;
    EXPECT_EQ(MapReduceTopK(scored, 25, options), reference)
        << partitions << " partitions";
  }
}

TEST(MapReduceTopKTest, KLargerThanInputReturnsAllSorted) {
  const std::vector<ScoredItem> scored{{2, 1.0}, {0, 3.0}, {1, 2.0}};
  const std::vector<ScoredItem> top = MapReduceTopK(scored, 100);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].item, 0);
  EXPECT_EQ(top[1].item, 1);
  EXPECT_EQ(top[2].item, 2);
}

}  // namespace
}  // namespace fairrec
