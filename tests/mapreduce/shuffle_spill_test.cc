// Spilling-shuffle parity suite for the MapReduce boundary: at every
// (shard layout x shuffle budget) combination, the budgeted Job 1 ->
// k-way-merge Job 2 path must produce a PeerIndex byte-identical to the
// classic in-memory boundary's — and the whole pipeline must return the
// same selection. The unique (pair, shard, item) record keys make the
// merged run order reproduce the unspilled sort exactly; this suite is the
// executable form of that argument.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/blob_io.h"
#include "common/random.h"
#include "mapreduce/jobs.h"
#include "mapreduce/pipeline.h"
#include "ratings/rating_matrix.h"
#include "sim/peer_index.h"

namespace fairrec {
namespace {

RatingMatrix CorpusMatrix() {
  RatingMatrixBuilder builder;
  Rng rng(0xfa1afe1);
  for (UserId u = 0; u < 40; ++u) {
    for (ItemId i = 0; i < 30; ++i) {
      if (rng.NextBool(0.35)) {
        EXPECT_TRUE(
            builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5))).ok());
      }
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

std::string SpillDir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/fairrec_mr_spill_" + tag;
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  return dir;
}

TEST(ShuffleSpillTest, SpilledBoundaryIsByteIdenticalAcrossShardsAndBudgets) {
  const RatingMatrix matrix = CorpusMatrix();
  const std::vector<RatingTriple> triples = matrix.ToTriples();
  const Group group = {1, 4, 9};
  const std::vector<double> means =
      RunUserMeanJob(triples, matrix.num_users());
  RatingSimilarityOptions sim_options;
  sim_options.shift_to_unit_interval = true;
  const double delta = 0.5;

  const size_t record_bytes = sizeof(PairMomentShuffle::Record);
  int probe = 0;
  for (const int32_t shards : {1, 2, 3, 5, 16}) {
    // The in-memory boundary at this shard layout is the reference.
    auto job1 = RunJob1(triples, group, matrix.num_users(), {}, shards);
    ASSERT_TRUE(job1.ok()) << job1.status().ToString();
    auto reference =
        RunJob2PeerIndex(job1->partial_moments, means, sim_options, delta,
                         matrix.num_users());
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();

    for (const size_t budget :
         {static_cast<size_t>(0), record_bytes * 3, record_bytes * 200,
          static_cast<size_t>(16) << 20}) {
      const std::string label = "shards " + std::to_string(shards) +
                                " budget " + std::to_string(budget);
      MomentShuffleOptions shuffle_options;
      shuffle_options.max_buffer_bytes = budget;
      if (budget > 0) {
        shuffle_options.temp_dir = SpillDir(std::to_string(probe++));
      }
      auto spilled = RunJob1Spilled(triples, group, matrix.num_users(),
                                    shuffle_options, {}, shards);
      ASSERT_TRUE(spilled.ok()) << label << ": " << spilled.status().ToString();
      // Identical candidate stream and co-rating accounting.
      EXPECT_TRUE(spilled->candidate_items == job1->candidate_items) << label;
      EXPECT_EQ(spilled->co_rating_records, job1->co_rating_records) << label;

      MapReduceStats job2_stats;
      auto index = RunJob2PeerIndex(spilled->moments, means, sim_options,
                                    delta, matrix.num_users(),
                                    /*max_peers_per_member=*/0, &job2_stats);
      ASSERT_TRUE(index.ok()) << label << ": " << index.status().ToString();
      EXPECT_TRUE(*index == *reference) << label;
      // The merged group count equals the in-memory boundary's moment
      // record count — the shuffle ships the same logical stream.
      EXPECT_EQ(spilled->moments.stats().groups_out,
                static_cast<int64_t>(job1->partial_moments.size()))
          << label;
      if (budget > 0 && budget < record_bytes * 100) {
        EXPECT_GT(spilled->moments.stats().runs_spilled, 0) << label;
      }
    }
  }
}

TEST(ShuffleSpillTest, BudgetedPipelineMatchesTheInMemoryPipeline) {
  const RatingMatrix matrix = CorpusMatrix();
  const Group group = {2, 7, 11};

  PipelineOptions base;
  base.similarity.shift_to_unit_interval = true;
  base.delta = 0.5;
  base.top_k = 8;

  for (const int32_t shards : {1, 3, 16}) {
    PipelineOptions reference_options = base;
    reference_options.moment_shards = shards;
    const GroupRecommendationPipeline reference_pipeline(reference_options);
    auto reference = reference_pipeline.Run(matrix, group, 5);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();

    for (const size_t budget :
         {sizeof(PairMomentShuffle::Record) * 5, static_cast<size_t>(1) << 22}) {
      PipelineOptions budgeted = reference_options;
      budgeted.max_shuffle_bytes = budget;
      budgeted.shuffle_spill_dir =
          SpillDir("pipe_" + std::to_string(shards) + "_" +
                   std::to_string(budget));
      const GroupRecommendationPipeline pipeline(budgeted);
      auto result = pipeline.Run(matrix, group, 5);
      const std::string label = "shards " + std::to_string(shards) +
                                " budget " + std::to_string(budget);
      ASSERT_TRUE(result.ok()) << label << ": " << result.status().ToString();
      EXPECT_TRUE(result->peer_index == reference->peer_index) << label;
      EXPECT_EQ(result->selection.items, reference->selection.items) << label;
      EXPECT_EQ(result->num_moment_records, reference->num_moment_records)
          << label;
      EXPECT_EQ(result->num_co_rating_records,
                reference->num_co_rating_records)
          << label;
      EXPECT_EQ(result->shuffle_stats.records_in,
                reference->num_co_rating_records)
          << label;
    }
  }

  // A budget without a spill dir is refused, not silently unbounded.
  PipelineOptions bad = base;
  bad.max_shuffle_bytes = 4096;
  const GroupRecommendationPipeline pipeline(bad);
  EXPECT_TRUE(pipeline.Run(matrix, group, 5).status().IsInvalidArgument());
}

}  // namespace
}  // namespace fairrec
