// The MapReduce seeding path of the incremental peer-graph subsystem:
// Job 1's per-shard partial moments, folded through
// BuildMomentStoreFromPartialMoments, must reproduce the in-memory engine's
// MomentStore exactly on the pairs the Job 1 stream covers — (member,
// outside-user) pairs — for every simulated shard count. Integer rating
// scales make the additive moments exact, so equality is bitwise.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "mapreduce/jobs.h"
#include "ratings/rating_matrix.h"
#include "sim/moment_store.h"
#include "sim/pairwise_engine.h"

namespace fairrec {
namespace {

RatingMatrix Corpus(uint64_t seed, int32_t users = 36, int32_t items = 40,
                    double density = 0.3) {
  Rng rng(seed);
  RatingMatrixBuilder builder;
  builder.Reserve(users, items);
  for (UserId u = 0; u < users; ++u) {
    for (ItemId i = 0; i < items; ++i) {
      if (rng.NextBool(density)) {
        EXPECT_TRUE(
            builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5))).ok());
      }
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

TEST(MomentStoreJobTest, MatchesEngineStoreOnMemberPairsAcrossShardCounts) {
  const RatingMatrix matrix = Corpus(20170417);
  const Group group = {3, 14, 29};
  const auto is_member = [&group](UserId u) {
    return std::find(group.begin(), group.end(), u) != group.end();
  };

  const PairwiseSimilarityEngine engine(&matrix);
  const MomentStore engine_store =
      std::move(engine.BuildMomentStore(MomentStoreOptions{.tile_users = 10}))
          .ValueOrDie();

  for (const int32_t shards : {1, 3, 8}) {
    const Job1Output job1 =
        std::move(RunJob1(matrix.ToTriples(), group, matrix.num_users(), {},
                          shards))
            .ValueOrDie();
    const MomentStore store =
        std::move(BuildMomentStoreFromPartialMoments(
                      job1.partial_moments, matrix.num_users(),
                      MomentStoreOptions{.tile_users = 10}))
            .ValueOrDie();

    ASSERT_EQ(store.num_users(), matrix.num_users());
    int64_t expected_pairs = 0;
    for (UserId a = 0; a < matrix.num_users(); ++a) {
      for (UserId b = a + 1; b < matrix.num_users(); ++b) {
        // Job 1 covers exactly the member/outside pairs.
        const bool covered = is_member(a) != is_member(b);
        const PairMoments* expected =
            covered ? engine_store.FindPair(a, b) : nullptr;
        const PairMoments* actual = store.FindPair(a, b);
        if (expected == nullptr) {
          EXPECT_EQ(actual, nullptr)
              << "pair (" << a << ", " << b << ") shards=" << shards;
          continue;
        }
        ++expected_pairs;
        ASSERT_NE(actual, nullptr)
            << "pair (" << a << ", " << b << ") shards=" << shards;
        EXPECT_EQ(*actual, *expected)
            << "pair (" << a << ", " << b << ") shards=" << shards;
      }
    }
    EXPECT_EQ(store.num_pairs(), expected_pairs) << "shards=" << shards;
  }
}

TEST(MomentStoreJobTest, RejectsInvalidConfiguration) {
  EXPECT_FALSE(BuildMomentStoreFromPartialMoments({}, -1).ok());
  EXPECT_FALSE(
      BuildMomentStoreFromPartialMoments({}, 4,
                                         MomentStoreOptions{.tile_users = 0})
          .ok());
  const MomentStore empty =
      std::move(BuildMomentStoreFromPartialMoments({}, 4)).ValueOrDie();
  EXPECT_EQ(empty.num_pairs(), 0);
  EXPECT_EQ(empty.num_users(), 4);
}

}  // namespace
}  // namespace fairrec
