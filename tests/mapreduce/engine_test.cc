#include "mapreduce/engine.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fairrec {
namespace {

using WordCountInput = std::vector<KeyValue<int, std::string>>;

std::vector<KeyValue<std::string, int64_t>> WordCount(
    const WordCountInput& input, const MapReduceOptions& options,
    MapReduceStats* stats = nullptr) {
  auto result = RunMapReduce<int, std::string, std::string, int64_t,
                             std::string, int64_t>(
      input,
      [](const int&, const std::string& line,
         MapEmitter<std::string, int64_t>& out) {
        std::string word;
        for (const char c : line + " ") {
          if (c == ' ') {
            if (!word.empty()) out.Emit(word, 1);
            word.clear();
          } else {
            word += c;
          }
        }
      },
      [](const std::string& word, std::span<const int64_t> counts,
         ReduceEmitter<std::string, int64_t>& out) {
        int64_t total = 0;
        for (const int64_t c : counts) total += c;
        out.Emit(word, total);
      },
      options, stats);
  std::sort(result.begin(), result.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  return result;
}

TEST(MapReduceEngineTest, WordCount) {
  const WordCountInput input{
      {0, "the quick fox"}, {1, "the lazy dog"}, {2, "the fox"}};
  const auto counts = WordCount(input, {});
  const std::map<std::string, int64_t> as_map = [&] {
    std::map<std::string, int64_t> m;
    for (const auto& kv : counts) m[kv.key] = kv.value;
    return m;
  }();
  EXPECT_EQ(as_map.at("the"), 3);
  EXPECT_EQ(as_map.at("fox"), 2);
  EXPECT_EQ(as_map.at("quick"), 1);
  EXPECT_EQ(as_map.at("lazy"), 1);
  EXPECT_EQ(as_map.at("dog"), 1);
  EXPECT_EQ(as_map.size(), 5u);  // the, quick, fox, lazy, dog
}

TEST(MapReduceEngineTest, EmptyInputProducesEmptyOutput) {
  const auto counts = WordCount({}, {});
  EXPECT_TRUE(counts.empty());
}

TEST(MapReduceEngineTest, ResultIndependentOfParallelism) {
  WordCountInput input;
  for (int i = 0; i < 200; ++i) {
    input.push_back({i, "w" + std::to_string(i % 17) + " shared"});
  }
  MapReduceOptions serial;
  serial.num_workers = 1;
  serial.num_map_shards = 1;
  serial.num_reduce_partitions = 1;
  const auto reference = WordCount(input, serial);
  for (const size_t workers : {2u, 4u}) {
    for (const size_t shards : {1u, 3u, 8u}) {
      for (const size_t partitions : {1u, 2u, 7u}) {
        MapReduceOptions options;
        options.num_workers = workers;
        options.num_map_shards = shards;
        options.num_reduce_partitions = partitions;
        EXPECT_EQ(WordCount(input, options), reference)
            << "workers=" << workers << " shards=" << shards
            << " partitions=" << partitions;
      }
    }
  }
}

TEST(MapReduceEngineTest, StatsAreReported) {
  const WordCountInput input{{0, "a b"}, {1, "a"}};
  MapReduceStats stats;
  MapReduceOptions options;
  options.num_map_shards = 2;
  options.num_reduce_partitions = 3;
  WordCount(input, options, &stats);
  EXPECT_EQ(stats.input_records, 2);
  EXPECT_EQ(stats.intermediate_records, 3);  // a, b, a
  EXPECT_EQ(stats.output_records, 2);        // a, b
  EXPECT_EQ(stats.map_shards, 2u);
  EXPECT_EQ(stats.reduce_partitions, 3u);
}

TEST(MapReduceEngineTest, ValuesArriveInEmissionOrder) {
  // One key, values tagged with their input index; the reducer must see them
  // in input order (stable shuffle contract).
  std::vector<KeyValue<int, int>> input;
  for (int i = 0; i < 50; ++i) input.push_back({i, i});
  MapReduceOptions options;
  options.num_map_shards = 4;
  options.num_reduce_partitions = 2;
  const auto output = RunMapReduce<int, int, int, int, int, std::vector<int>>(
      input,
      [](const int&, const int& v, MapEmitter<int, int>& out) {
        out.Emit(0, v);
      },
      [](const int& key, std::span<const int> values,
         ReduceEmitter<int, std::vector<int>>& out) {
        out.Emit(key, std::vector<int>(values.begin(), values.end()));
      },
      options);
  ASSERT_EQ(output.size(), 1u);
  std::vector<int> expected(50);
  for (int i = 0; i < 50; ++i) expected[static_cast<size_t>(i)] = i;
  EXPECT_EQ(output[0].value, expected);
}

TEST(MapReduceEngineTest, PairKeysWorkWithPairHash) {
  using PairKey = std::pair<int32_t, int32_t>;
  std::vector<KeyValue<int, PairKey>> input;
  for (int i = 0; i < 30; ++i) input.push_back({i, {i % 3, i % 2}});
  const auto output =
      RunMapReduce<int, PairKey, PairKey, int64_t, PairKey, int64_t, PairHash>(
          input,
          [](const int&, const PairKey& key,
             MapEmitter<PairKey, int64_t, PairHash>& out) {
            out.Emit(key, 1);
          },
          [](const PairKey& key, std::span<const int64_t> values,
             ReduceEmitter<PairKey, int64_t>& out) {
            out.Emit(key, static_cast<int64_t>(values.size()));
          },
          {});
  // 6 distinct (i%3, i%2) combinations, each hit 5 times.
  EXPECT_EQ(output.size(), 6u);
  for (const auto& kv : output) EXPECT_EQ(kv.value, 5);
}

TEST(MapReduceOptionsTest, ResolvedFillsZeros) {
  const MapReduceOptions resolved = MapReduceOptions{}.Resolved();
  EXPECT_GE(resolved.num_workers, 1u);
  EXPECT_EQ(resolved.num_map_shards, resolved.num_workers);
  EXPECT_EQ(resolved.num_reduce_partitions, resolved.num_workers);

  MapReduceOptions custom;
  custom.num_workers = 3;
  custom.num_map_shards = 5;
  const MapReduceOptions kept = custom.Resolved();
  EXPECT_EQ(kept.num_workers, 3u);
  EXPECT_EQ(kept.num_map_shards, 5u);
  EXPECT_EQ(kept.num_reduce_partitions, 3u);
}

}  // namespace
}  // namespace fairrec
