#include "mapreduce/pipeline.h"

#include <cmath>

#include <gtest/gtest.h>

#include "cf/recommender.h"
#include "core/group_recommender.h"
#include "data/scenario.h"
#include "sim/rating_similarity.h"

namespace fairrec {
namespace {

ScenarioConfig SmallScenario() {
  ScenarioConfig config;
  config.num_patients = 60;
  config.num_documents = 50;
  config.num_clusters = 3;
  config.rating_density = 0.25;
  config.seed = 777;
  return config;
}

PipelineOptions DefaultPipelineOptions() {
  PipelineOptions options;
  options.similarity.shift_to_unit_interval = true;
  options.delta = 0.55;
  options.top_k = 5;
  options.aggregation = AggregationKind::kAverage;
  return options;
}

/// The serial reference for the whole §IV flow. The returned context owns all
/// its data, so the locals may die at scope exit.
GroupContext SerialContext(const RatingMatrix& matrix, const Group& group,
                           const PipelineOptions& options) {
  const RatingSimilarity similarity(&matrix, options.similarity);
  RecommenderOptions rec_options;
  rec_options.peers.delta = options.delta;
  rec_options.top_k = options.top_k;
  const Recommender recommender =
      Recommender::ForSimilarityScan(&matrix, &similarity, rec_options);
  GroupContextOptions ctx_options;
  ctx_options.aggregation = options.aggregation;
  ctx_options.top_k = options.top_k;
  ctx_options.require_all_members = options.require_all_members;
  const GroupRecommender group_rec(&recommender, ctx_options);
  return std::move(group_rec.BuildContext(group)).ValueOrDie();
}

TEST(PipelineTest, Fig2EquivalenceWithSerialPath) {
  const Scenario scenario = std::move(BuildScenario(SmallScenario())).ValueOrDie();
  const Group group = scenario.MakeCohesiveGroup(3, 1);
  const PipelineOptions options = DefaultPipelineOptions();

  const GroupRecommendationPipeline pipeline(options);
  const PipelineResult mr =
      std::move(pipeline.Run(scenario.ratings, group, 6)).ValueOrDie();
  const GroupContext serial = SerialContext(scenario.ratings, group, options);

  // Same candidate universe.
  ASSERT_EQ(mr.context.num_candidates(), serial.num_candidates());
  for (int32_t c = 0; c < serial.num_candidates(); ++c) {
    EXPECT_EQ(mr.context.candidate(c).item, serial.candidate(c).item);
    EXPECT_NEAR(mr.context.candidate(c).group_relevance,
                serial.candidate(c).group_relevance, 1e-9);
    for (int32_t m = 0; m < serial.group_size(); ++m) {
      const double a =
          mr.context.candidate(c).member_relevance[static_cast<size_t>(m)];
      const double b =
          serial.candidate(c).member_relevance[static_cast<size_t>(m)];
      EXPECT_NEAR(a, b, 1e-9) << "candidate " << c << " member " << m;
    }
  }
  // Same A_u sets.
  for (int32_t m = 0; m < serial.group_size(); ++m) {
    ASSERT_EQ(mr.context.MemberTopK(m).size(), serial.MemberTopK(m).size());
    for (size_t i = 0; i < serial.MemberTopK(m).size(); ++i) {
      EXPECT_EQ(mr.context.MemberTopK(m)[i].item, serial.MemberTopK(m)[i].item);
    }
  }
}

TEST(PipelineTest, SelectionMatchesCentralizedAlgorithm1) {
  const Scenario scenario = std::move(BuildScenario(SmallScenario())).ValueOrDie();
  const Group group = scenario.MakeCohesiveGroup(3, 2);
  const PipelineOptions options = DefaultPipelineOptions();
  const GroupRecommendationPipeline pipeline(options);
  const PipelineResult mr =
      std::move(pipeline.Run(scenario.ratings, group, 6)).ValueOrDie();

  const GroupContext serial = SerialContext(scenario.ratings, group, options);
  const FairnessHeuristic heuristic(options.heuristic);
  const Selection expected = std::move(heuristic.Select(serial, 6)).ValueOrDie();
  EXPECT_EQ(mr.selection.items, expected.items);
  EXPECT_NEAR(mr.selection.score.value, expected.score.value, 1e-9);
}

TEST(PipelineTest, Proposition1HoldsOnPipelineOutput) {
  const Scenario scenario = std::move(BuildScenario(SmallScenario())).ValueOrDie();
  const Group group = scenario.MakeCohesiveGroup(4, 3);
  const GroupRecommendationPipeline pipeline(DefaultPipelineOptions());
  // z = 8 >= |G| = 4.
  const PipelineResult result =
      std::move(pipeline.Run(scenario.ratings, group, 8)).ValueOrDie();
  ASSERT_GE(result.context.num_candidates(), 8);
  EXPECT_DOUBLE_EQ(result.selection.score.fairness, 1.0);
}

TEST(PipelineTest, StatsAndDiagnosticsPopulated) {
  const Scenario scenario = std::move(BuildScenario(SmallScenario())).ValueOrDie();
  const Group group = scenario.MakeCohesiveGroup(3, 4);
  const GroupRecommendationPipeline pipeline(DefaultPipelineOptions());
  const PipelineResult result =
      std::move(pipeline.Run(scenario.ratings, group, 4)).ValueOrDie();
  EXPECT_GT(result.job1_stats.input_records, 0);
  EXPECT_GT(result.job1_stats.intermediate_records, 0);
  EXPECT_GT(result.num_candidate_items, 0);
  EXPECT_GT(result.num_similarity_pairs, 0);
  EXPECT_EQ(result.selection.items.size(), 4u);
}

TEST(PipelineTest, ThreadCountInvariance) {
  const Scenario scenario = std::move(BuildScenario(SmallScenario())).ValueOrDie();
  const Group group = scenario.MakeCohesiveGroup(3, 5);
  PipelineOptions serial_options = DefaultPipelineOptions();
  serial_options.mapreduce.num_workers = 1;
  serial_options.mapreduce.num_map_shards = 1;
  serial_options.mapreduce.num_reduce_partitions = 1;
  PipelineOptions parallel_options = DefaultPipelineOptions();
  parallel_options.mapreduce.num_workers = 4;
  parallel_options.mapreduce.num_map_shards = 6;
  parallel_options.mapreduce.num_reduce_partitions = 3;

  const GroupRecommendationPipeline a(serial_options);
  const GroupRecommendationPipeline b(parallel_options);
  const PipelineResult ra =
      std::move(a.Run(scenario.ratings, group, 5)).ValueOrDie();
  const PipelineResult rb =
      std::move(b.Run(scenario.ratings, group, 5)).ValueOrDie();
  EXPECT_EQ(ra.selection.items, rb.selection.items);
  ASSERT_EQ(ra.context.num_candidates(), rb.context.num_candidates());
}

TEST(PipelineTest, RejectsBadGroup) {
  const Scenario scenario = std::move(BuildScenario(SmallScenario())).ValueOrDie();
  const GroupRecommendationPipeline pipeline(DefaultPipelineOptions());
  EXPECT_TRUE(
      pipeline.Run(scenario.ratings, {}, 4).status().IsInvalidArgument());
  EXPECT_TRUE(pipeline.Run(scenario.ratings, {99999}, 4)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace fairrec
