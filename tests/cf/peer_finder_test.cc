#include "cf/peer_finder.h"

#include <utility>

#include <gtest/gtest.h>

#include "sim/peer_adapter.h"
#include "sim/peer_index.h"

namespace fairrec {
namespace {

/// Similarity looked up from a fixed table (symmetric).
class TableSimilarity final : public UserSimilarity {
 public:
  explicit TableSimilarity(std::vector<std::vector<double>> table)
      : table_(std::move(table)) {}
  double Compute(UserId a, UserId b) const override {
    return table_[static_cast<size_t>(a)][static_cast<size_t>(b)];
  }
  std::string name() const override { return "table"; }

 private:
  std::vector<std::vector<double>> table_;
};

TableSimilarity FourUsers() {
  // sim(0,*) = {-, 0.9, 0.5, 0.1}; sim(1,2)=0.7, sim(1,3)=0.2, sim(2,3)=0.6
  return TableSimilarity({{1.0, 0.9, 0.5, 0.1},
                          {0.9, 1.0, 0.7, 0.2},
                          {0.5, 0.7, 1.0, 0.6},
                          {0.1, 0.2, 0.6, 1.0}});
}

TEST(PeerFinderTest, ThresholdFiltersAndSorts) {
  const TableSimilarity sim = FourUsers();
  PeerFinderOptions options;
  options.delta = 0.5;
  const PeerFinder finder(&sim, 4, options);
  const std::vector<Peer> peers = finder.FindPeers(0);
  // Def. 1: qualifying peers of user 0 are 1 (0.9) and 2 (0.5), in
  // descending similarity order.
  ASSERT_EQ(peers.size(), 2u);
  EXPECT_EQ(peers[0], (Peer{1, 0.9}));
  EXPECT_EQ(peers[1], (Peer{2, 0.5}));
}

TEST(PeerFinderTest, ThresholdIsInclusive) {
  const TableSimilarity sim = FourUsers();
  PeerFinderOptions options;
  options.delta = 0.9;
  const PeerFinder finder(&sim, 4, options);
  const std::vector<Peer> peers = finder.FindPeers(0);
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0].user, 1);
}

TEST(PeerFinderTest, SelfIsNeverAPeer) {
  const TableSimilarity sim = FourUsers();
  PeerFinderOptions options;
  options.delta = 0.0;
  const PeerFinder finder(&sim, 4, options);
  for (const Peer& p : finder.FindPeers(2)) EXPECT_NE(p.user, 2);
}

TEST(PeerFinderTest, ExcludeListRespected) {
  const TableSimilarity sim = FourUsers();
  PeerFinderOptions options;
  options.delta = 0.0;
  const PeerFinder finder(&sim, 4, options);
  const std::vector<Peer> peers = finder.FindPeers(0, {1, 2});
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0].user, 3);
}

TEST(PeerFinderTest, MaxPeersCapsAfterSorting) {
  const TableSimilarity sim = FourUsers();
  PeerFinderOptions options;
  options.delta = 0.0;
  options.max_peers = 2;
  const PeerFinder finder(&sim, 4, options);
  const std::vector<Peer> peers = finder.FindPeers(0);
  ASSERT_EQ(peers.size(), 2u);
  EXPECT_EQ(peers[0].user, 1);  // the two *most similar* survive
  EXPECT_EQ(peers[1].user, 2);
}

TEST(PeerFinderTest, TieBreaksByAscendingId) {
  const TableSimilarity sim({{1.0, 0.5, 0.5}, {0.5, 1.0, 0.5}, {0.5, 0.5, 1.0}});
  PeerFinderOptions options;
  options.delta = 0.5;
  const PeerFinder finder(&sim, 3, options);
  const std::vector<Peer> peers = finder.FindPeers(0);
  ASSERT_EQ(peers.size(), 2u);
  EXPECT_EQ(peers[0].user, 1);
  EXPECT_EQ(peers[1].user, 2);
}

TEST(PeerFinderTest, NoQualifyingPeers) {
  const TableSimilarity sim = FourUsers();
  PeerFinderOptions options;
  options.delta = 0.95;
  const PeerFinder finder(&sim, 4, options);
  EXPECT_TRUE(finder.FindPeers(3).empty());
}

TEST(PeerFinderTest, OutOfRangeExcludeEntriesIgnored) {
  const TableSimilarity sim = FourUsers();
  PeerFinderOptions options;
  options.delta = 0.0;
  const PeerFinder finder(&sim, 4, options);
  EXPECT_EQ(finder.FindPeers(0, {-5, 99}).size(), 3u);
}

// ---- Sparse mode: the thin filter over PeerProvider::PeersOf ------------

/// Every scan-mode expectation must hold verbatim when the same similarity
/// is served through a provider built at (or below) the query delta.
void ExpectModesAgree(const UserSimilarity& sim, int32_t num_users,
                      PeerFinderOptions options, const Group& exclude = {}) {
  const PeerFinder scan(&sim, num_users, options);
  // Build the provider at the loosest threshold so the query delta filters.
  PeerIndexOptions build_options;
  build_options.delta = 0.0;
  const DensePeerAdapter provider(sim, num_users, build_options);
  const PeerFinder sparse(&provider, options);
  for (UserId u = 0; u < num_users; ++u) {
    EXPECT_EQ(sparse.FindPeers(u, exclude), scan.FindPeers(u, exclude))
        << "u=" << u << " delta=" << options.delta
        << " max_peers=" << options.max_peers;
  }
}

TEST(PeerFinderSparseTest, AgreesWithScanModeAcrossOptions) {
  const TableSimilarity sim = FourUsers();
  for (const double delta : {0.0, 0.5, 0.9}) {
    for (const int32_t max_peers : {0, 1, 2}) {
      PeerFinderOptions options;
      options.delta = delta;
      options.max_peers = max_peers;
      ExpectModesAgree(sim, 4, options);
    }
  }
}

TEST(PeerFinderSparseTest, ExclusionRefillsFromDeeperEntries) {
  // With an unbounded provider, excluding the top peer must surface the next
  // one, exactly like the scan path — max_peers applies after exclusion.
  const TableSimilarity sim = FourUsers();
  PeerFinderOptions options;
  options.delta = 0.0;
  options.max_peers = 2;
  ExpectModesAgree(sim, 4, options, /*exclude=*/{1});

  PeerIndexOptions build_options;
  build_options.delta = 0.0;
  const DensePeerAdapter provider(sim, 4, build_options);
  const PeerFinder sparse(&provider, options);
  const std::vector<Peer> peers = sparse.FindPeers(0, {1});
  ASSERT_EQ(peers.size(), 2u);
  EXPECT_EQ(peers[0].user, 2);  // 0.5
  EXPECT_EQ(peers[1].user, 3);  // 0.1, promoted by the exclusion
}

TEST(PeerFinderSparseTest, QueryDeltaMayBeStricterThanBuildDelta) {
  const TableSimilarity sim = FourUsers();
  PeerIndexOptions build_options;
  build_options.delta = 0.0;
  const DensePeerAdapter provider(sim, 4, build_options);

  PeerFinderOptions options;
  options.delta = 0.6;  // stricter than the build threshold
  const PeerFinder sparse(&provider, options);
  const std::vector<Peer> peers = sparse.FindPeers(0);
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0], (Peer{1, 0.9}));
}

TEST(PeerFinderSparseTest, HandBuiltIndexServesDirectly) {
  PeerIndex::Builder builder(3, {});
  builder.OfferPair(0, 1, 0.8);
  builder.OfferPair(0, 2, 0.3);
  const PeerIndex index = std::move(builder).Build();

  PeerFinderOptions options;
  options.delta = 0.2;
  const PeerFinder finder(&index, options);
  EXPECT_EQ(finder.num_users(), 3);
  const std::vector<Peer> peers = finder.FindPeers(0);
  ASSERT_EQ(peers.size(), 2u);
  EXPECT_EQ(peers[0], (Peer{1, 0.8}));
  EXPECT_EQ(peers[1], (Peer{2, 0.3}));
  EXPECT_EQ(finder.FindPeers(1), (std::vector<Peer>{{0, 0.8}}));
}

}  // namespace
}  // namespace fairrec
