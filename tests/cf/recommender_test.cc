#include "cf/recommender.h"

#include <algorithm>
#include <utility>

#include <gtest/gtest.h>

#include "cf/top_k.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"
#include "sim/rating_similarity.h"
#include "sim/similarity_matrix.h"

namespace fairrec {
namespace {

/// Fixed small world: 6 users, 8 items, cluster structure (users 0-2 like
/// even items; users 3-5 like odd items).
RatingMatrix ClusteredMatrix() {
  RatingMatrixBuilder builder;
  auto rate = [&builder](UserId u, ItemId i, Rating r) {
    ASSERT_TRUE(builder.Add(u, i, r).ok());
  };
  for (UserId u = 0; u < 3; ++u) {
    for (ItemId i = 0; i < 8; ++i) {
      // Leave item (u * 2) unrated by user u so there is something to
      // recommend inside the cluster's taste.
      if (i == u * 2) continue;
      rate(u, i, i % 2 == 0 ? 5 : 2);
    }
  }
  for (UserId u = 3; u < 6; ++u) {
    for (ItemId i = 0; i < 8; ++i) {
      if (i == (u - 3) * 2 + 1) continue;
      rate(u, i, i % 2 == 1 ? 5 : 2);
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

RecommenderOptions DefaultOptions() {
  RecommenderOptions options;
  options.peers.delta = 0.3;
  options.top_k = 3;
  return options;
}

TEST(RecommenderTest, RejectsUnknownUser) {
  const RatingMatrix m = ClusteredMatrix();
  const RatingSimilarity sim(&m);
  const Recommender rec =
      Recommender::ForSimilarityScan(&m, &sim, DefaultOptions());
  EXPECT_TRUE(rec.RecommendForUser(99).status().IsInvalidArgument());
  EXPECT_TRUE(rec.RecommendForUser(-1).status().IsInvalidArgument());
}

TEST(RecommenderTest, RecommendsOnlyUnratedItems) {
  const RatingMatrix m = ClusteredMatrix();
  const RatingSimilarity sim(&m);
  const Recommender rec =
      Recommender::ForSimilarityScan(&m, &sim, DefaultOptions());
  const auto recs = rec.RecommendForUser(0);
  ASSERT_TRUE(recs.ok());
  for (const ScoredItem& s : *recs) {
    EXPECT_FALSE(m.HasRating(0, s.item)) << "item " << s.item;
  }
}

TEST(RecommenderTest, ClusterTasteDrivesTopRecommendation) {
  const RatingMatrix m = ClusteredMatrix();
  const RatingSimilarity sim(&m);
  const Recommender rec =
      Recommender::ForSimilarityScan(&m, &sim, DefaultOptions());
  // User 0's only unrated item is 0 (even => loved by the cluster).
  const auto recs = rec.RecommendForUser(0);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  EXPECT_EQ((*recs)[0].item, 0);
  EXPECT_GT((*recs)[0].score, 4.0);
}

TEST(RecommenderTest, TopKIsBounded) {
  const RatingMatrix m = ClusteredMatrix();
  const RatingSimilarity sim(&m);
  RecommenderOptions options = DefaultOptions();
  options.top_k = 1;
  const Recommender rec =
      Recommender::ForSimilarityScan(&m, &sim, options);
  const auto recs = rec.RecommendForUser(1);
  ASSERT_TRUE(recs.ok());
  EXPECT_LE(recs->size(), 1u);
}

TEST(RecommenderGroupTest, RejectsBadGroups) {
  const RatingMatrix m = ClusteredMatrix();
  const RatingSimilarity sim(&m);
  const Recommender rec =
      Recommender::ForSimilarityScan(&m, &sim, DefaultOptions());
  EXPECT_TRUE(rec.RelevanceForGroup({}).status().IsInvalidArgument());
  EXPECT_TRUE(rec.RelevanceForGroup({0, 0}).status().IsInvalidArgument());
  EXPECT_TRUE(rec.RelevanceForGroup({0, 42}).status().IsInvalidArgument());
}

TEST(RecommenderGroupTest, CandidatesAreUnratedByEveryMember) {
  const RatingMatrix m = ClusteredMatrix();
  const RatingSimilarity sim(&m);
  const Recommender rec =
      Recommender::ForSimilarityScan(&m, &sim, DefaultOptions());
  const Group group{0, 1};
  const auto members = rec.RelevanceForGroup(group);
  ASSERT_TRUE(members.ok());
  const std::vector<ItemId> candidates = m.ItemsUnratedByAll(group);
  for (const MemberRelevance& member : *members) {
    for (const ScoredItem& s : member.relevance) {
      EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(),
                                     s.item))
          << "item " << s.item << " rated by some member";
    }
  }
}

TEST(RecommenderGroupTest, PeersExcludeGroupMembers) {
  const RatingMatrix m = ClusteredMatrix();
  const RatingSimilarity sim(&m);
  const Recommender rec =
      Recommender::ForSimilarityScan(&m, &sim, DefaultOptions());
  const Group group{0, 1, 2};
  const auto members = rec.RelevanceForGroup(group);
  ASSERT_TRUE(members.ok());
  for (const MemberRelevance& member : *members) {
    for (const Peer& peer : member.peers) {
      EXPECT_TRUE(std::find(group.begin(), group.end(), peer.user) ==
                  group.end())
          << "peer " << peer.user << " is a group member";
    }
  }
}

TEST(RecommenderGroupTest, MemberTopKIsPrefixOfRelevanceOrdering) {
  const RatingMatrix m = ClusteredMatrix();
  const RatingSimilarity sim(&m);
  const Recommender rec =
      Recommender::ForSimilarityScan(&m, &sim, DefaultOptions());
  const auto members = rec.RelevanceForGroup({0, 3});
  ASSERT_TRUE(members.ok());
  for (const MemberRelevance& member : *members) {
    std::vector<ScoredItem> reference = member.relevance;
    std::sort(reference.begin(), reference.end(), ScoredItemBetter);
    reference.resize(std::min(reference.size(), member.top_k.size()));
    EXPECT_EQ(member.top_k, reference);
  }
}

TEST(RecommenderSparseTest, ProviderModeMatchesScanMode) {
  // The engine-built peer graph and the O(U)-scan path must produce the same
  // single-user lists and the same group relevance tables, exactly. The scan
  // side reads the cached matrix (which delegates to the same engine), so
  // every compared double is bit-identical by construction.
  const RatingMatrix m = ClusteredMatrix();
  const RatingSimilarity base(&m);
  const auto sim =
      std::move(SimilarityMatrix::Precompute(base, m.num_users())).ValueOrDie();
  const Recommender scan =
      Recommender::ForSimilarityScan(&m, sim.get(), DefaultOptions());

  PeerIndexOptions peer_options;
  peer_options.delta = DefaultOptions().peers.delta;
  const PairwiseSimilarityEngine engine(&m, {});
  const PeerIndex index =
      std::move(engine.BuildPeerIndex(peer_options)).ValueOrDie();
  const Recommender sparse(&m, &index, DefaultOptions());

  for (UserId u = 0; u < m.num_users(); ++u) {
    EXPECT_EQ(std::move(sparse.RecommendForUser(u)).ValueOrDie(),
              std::move(scan.RecommendForUser(u)).ValueOrDie())
        << "u=" << u;
  }

  const Group group{0, 3};
  const auto scan_members = std::move(scan.RelevanceForGroup(group)).ValueOrDie();
  const auto sparse_members =
      std::move(sparse.RelevanceForGroup(group)).ValueOrDie();
  ASSERT_EQ(sparse_members.size(), scan_members.size());
  for (size_t i = 0; i < scan_members.size(); ++i) {
    EXPECT_EQ(sparse_members[i].user, scan_members[i].user);
    EXPECT_EQ(sparse_members[i].peers, scan_members[i].peers);
    EXPECT_EQ(sparse_members[i].relevance, scan_members[i].relevance);
    EXPECT_EQ(sparse_members[i].top_k, scan_members[i].top_k);
  }
}

TEST(RecommenderSparseTest, PerQueryProviderOverridesTheBuiltInFinder) {
  const RatingMatrix m = ClusteredMatrix();
  const RatingSimilarity sim(&m);
  const Recommender rec =
      Recommender::ForSimilarityScan(&m, &sim, DefaultOptions());

  // A provider that only knows user 0 <-> user 5 forces every other member's
  // peer set empty, whatever the built-in finder would say.
  PeerIndex::Builder builder(m.num_users(), {});
  builder.OfferPair(0, 5, 0.9);
  const PeerIndex index = std::move(builder).Build();

  const auto members =
      std::move(rec.RelevanceForGroup({0, 1}, index)).ValueOrDie();
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0].peers, (std::vector<Peer>{{5, 0.9}}));
  EXPECT_TRUE(members[1].peers.empty());
}

TEST(RecommenderGroupTest, RelevanceListsAscendingByItem) {
  const RatingMatrix m = ClusteredMatrix();
  const RatingSimilarity sim(&m);
  const Recommender rec =
      Recommender::ForSimilarityScan(&m, &sim, DefaultOptions());
  const auto members = rec.RelevanceForGroup({0, 4});
  ASSERT_TRUE(members.ok());
  for (const MemberRelevance& member : *members) {
    for (size_t i = 1; i < member.relevance.size(); ++i) {
      EXPECT_LT(member.relevance[i - 1].item, member.relevance[i].item);
    }
  }
}

}  // namespace
}  // namespace fairrec
