#include "cf/relevance_estimator.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace fairrec {
namespace {

RatingMatrix MatrixFromTriples(const std::vector<RatingTriple>& triples) {
  RatingMatrixBuilder builder;
  EXPECT_TRUE(builder.AddAll(triples).ok());
  return std::move(builder.Build()).ValueOrDie();
}

TEST(RelevanceEstimatorTest, Equation1HandComputed) {
  // Peers 1 (sim 0.8, rated 5) and 2 (sim 0.4, rated 2):
  // relevance = (0.8*5 + 0.4*2) / (0.8 + 0.4) = 4.8 / 1.2 = 4.0
  const RatingMatrix m = MatrixFromTriples({{1, 0, 5}, {2, 0, 2}});
  const RelevanceEstimator estimator(&m);
  const std::vector<Peer> peers{{1, 0.8}, {2, 0.4}};
  const auto rel = estimator.Estimate(peers, 0);
  ASSERT_TRUE(rel.has_value());
  EXPECT_NEAR(*rel, 4.0, 1e-12);
}

TEST(RelevanceEstimatorTest, OnlyPeersWhoRatedCount) {
  const RatingMatrix m = MatrixFromTriples({{1, 0, 5}, {2, 1, 1}});
  const RelevanceEstimator estimator(&m);
  // Peer 2 rated a different item; only peer 1 contributes.
  const std::vector<Peer> peers{{1, 0.5}, {2, 0.9}};
  const auto rel = estimator.Estimate(peers, 0);
  ASSERT_TRUE(rel.has_value());
  EXPECT_NEAR(*rel, 5.0, 1e-12);
}

TEST(RelevanceEstimatorTest, UndefinedWhenNoPeerRated) {
  const RatingMatrix m = MatrixFromTriples({{1, 0, 5}});
  const RelevanceEstimator estimator(&m);
  EXPECT_FALSE(estimator.Estimate({{1, 0.5}}, 1).has_value());  // item 1 unrated
  EXPECT_FALSE(estimator.Estimate({}, 0).has_value());          // no peers
}

TEST(RelevanceEstimatorTest, UndefinedForInvalidItem) {
  const RatingMatrix m = MatrixFromTriples({{1, 0, 5}});
  const RelevanceEstimator estimator(&m);
  EXPECT_FALSE(estimator.Estimate({{1, 0.5}}, 99).has_value());
  EXPECT_FALSE(estimator.Estimate({{1, 0.5}}, -1).has_value());
}

TEST(RelevanceEstimatorTest, ZeroSimilarityMassIsUndefined) {
  const RatingMatrix m = MatrixFromTriples({{1, 0, 5}});
  const RelevanceEstimator estimator(&m);
  // A peer with zero weight contributes nothing; total weight 0 -> undefined.
  EXPECT_FALSE(estimator.Estimate({{1, 0.0}}, 0).has_value());
}

TEST(RelevanceEstimatorTest, RelevanceStaysWithinRatingScale) {
  const RatingMatrix m = MatrixFromTriples({{1, 0, 2}, {2, 0, 5}, {3, 0, 4}});
  const RelevanceEstimator estimator(&m);
  const auto rel = estimator.Estimate({{1, 0.3}, {2, 0.5}, {3, 0.2}}, 0);
  ASSERT_TRUE(rel.has_value());
  EXPECT_GE(*rel, kMinRating);
  EXPECT_LE(*rel, kMaxRating);
}

TEST(RelevanceEstimatorTest, EstimateAllMatchesPerItemEstimates) {
  Rng rng(55);
  RatingMatrixBuilder builder;
  for (UserId u = 0; u < 10; ++u) {
    for (ItemId i = 0; i < 15; ++i) {
      if (rng.NextBool(0.5)) {
        EXPECT_TRUE(
            builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5))).ok());
      }
    }
  }
  const RatingMatrix m = std::move(builder.Build()).ValueOrDie();
  const RelevanceEstimator estimator(&m);
  std::vector<Peer> peers;
  for (UserId u = 1; u < 10; ++u) {
    peers.push_back({u, rng.NextDouble() + 0.01});
  }
  std::vector<ItemId> items;
  for (ItemId i = 0; i < 15; ++i) items.push_back(i);

  const std::vector<ScoredItem> batch = estimator.EstimateAll(peers, items);
  size_t cursor = 0;
  for (const ItemId i : items) {
    const auto single = estimator.Estimate(peers, i);
    if (single.has_value()) {
      ASSERT_LT(cursor, batch.size());
      EXPECT_EQ(batch[cursor].item, i);
      EXPECT_NEAR(batch[cursor].score, *single, 1e-12);
      ++cursor;
    }
  }
  EXPECT_EQ(cursor, batch.size());  // no extra items in the batch
}

TEST(RelevanceEstimatorTest, EstimateAllEmptyInputs) {
  const RatingMatrix m = MatrixFromTriples({{0, 0, 3}});
  const RelevanceEstimator estimator(&m);
  EXPECT_TRUE(estimator.EstimateAll({}, {0}).empty());
  EXPECT_TRUE(estimator.EstimateAll({{0, 0.5}}, {}).empty());
}

}  // namespace
}  // namespace fairrec
