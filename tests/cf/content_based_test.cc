#include "cf/content_based.h"

#include <gtest/gtest.h>

namespace fairrec {
namespace {

/// Builds a matrix whose item grid covers all 5 fixture items, regardless of
/// which ones the triples mention.
RatingMatrix MatrixFromTriples(const std::vector<RatingTriple>& triples) {
  RatingMatrixBuilder builder;
  builder.Reserve(1, 5);
  EXPECT_TRUE(builder.AddAll(triples).ok());
  return std::move(builder.Build()).ValueOrDie();
}

/// Items 0,1 share feature axis 0; items 2,3 share axis 1; item 4 mixes.
std::vector<SparseVector> Features() {
  return {SparseVector::FromPairs({{0, 1.0}}),
          SparseVector::FromPairs({{0, 1.0}}),
          SparseVector::FromPairs({{1, 1.0}}),
          SparseVector::FromPairs({{1, 1.0}}),
          SparseVector::FromPairs({{0, 1.0}, {1, 1.0}})};
}

TEST(ContentBasedTest, ValidatesInputs) {
  const RatingMatrix m = MatrixFromTriples({{0, 0, 5}});
  EXPECT_TRUE(ContentBasedEstimator::Create(nullptr, Features())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ContentBasedEstimator::Create(&m, {})
                  .status()
                  .IsInvalidArgument());
  ContentBasedOptions bad;
  bad.max_neighbors = -1;
  EXPECT_TRUE(ContentBasedEstimator::Create(&m, Features(), bad)
                  .status()
                  .IsInvalidArgument());
}

TEST(ContentBasedTest, PredictsFromContentTwins) {
  // User 0 loved item 0; item 1 is its content twin -> prediction 5.
  const RatingMatrix m = MatrixFromTriples({{0, 0, 5}, {0, 2, 1}});
  const auto estimator =
      std::move(ContentBasedEstimator::Create(&m, Features())).ValueOrDie();
  const auto p = estimator.Predict(0, 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(*p, 5.0, 1e-12);
  // Item 3 is the twin of the hated item 2.
  const auto q = estimator.Predict(0, 3);
  ASSERT_TRUE(q.has_value());
  EXPECT_NEAR(*q, 1.0, 1e-12);
}

TEST(ContentBasedTest, MixedItemBlendsNeighbours) {
  const RatingMatrix m = MatrixFromTriples({{0, 0, 5}, {0, 2, 1}});
  const auto estimator =
      std::move(ContentBasedEstimator::Create(&m, Features())).ValueOrDie();
  // Item 4 is equally similar (cos = 1/sqrt(2)) to items 0 and 2.
  const auto p = estimator.Predict(0, 4);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(*p, 3.0, 1e-12);
}

TEST(ContentBasedTest, UndefinedWithoutSimilarRatedItems) {
  // User rated only axis-1 items; item 0 lives on axis 0.
  const RatingMatrix m = MatrixFromTriples({{0, 2, 4}, {0, 3, 2}});
  const auto estimator =
      std::move(ContentBasedEstimator::Create(&m, Features())).ValueOrDie();
  EXPECT_FALSE(estimator.Predict(0, 0).has_value());
}

TEST(ContentBasedTest, UndefinedForUnknownIdsOrEmptyFeatures) {
  std::vector<SparseVector> features = Features();
  features[1] = SparseVector();  // item 1 has no content
  const RatingMatrix m = MatrixFromTriples({{0, 0, 5}});
  const auto estimator =
      std::move(ContentBasedEstimator::Create(&m, features)).ValueOrDie();
  EXPECT_FALSE(estimator.Predict(0, 1).has_value());   // empty feature vector
  EXPECT_FALSE(estimator.Predict(99, 1).has_value());  // unknown user
  EXPECT_FALSE(estimator.Predict(0, 99).has_value());  // unknown item
}

TEST(ContentBasedTest, MinSimilarityFiltersWeakNeighbours) {
  const RatingMatrix m = MatrixFromTriples({{0, 4, 5}});
  ContentBasedOptions options;
  options.min_similarity = 0.9;  // cos(item 0, item 4) = 1/sqrt(2) < 0.9
  const auto estimator =
      std::move(ContentBasedEstimator::Create(&m, Features(), options))
          .ValueOrDie();
  EXPECT_FALSE(estimator.Predict(0, 0).has_value());
}

TEST(ContentBasedTest, MaxNeighborsKeepsTheMostSimilar) {
  // Target item 4; user rated the strong twin (item 0's axis) and weaker
  // matches. With max_neighbors = 1 only the most similar neighbour counts.
  std::vector<SparseVector> features = {
      SparseVector::FromPairs({{0, 1.0}}),             // item 0: cos ~ 0.707
      SparseVector::FromPairs({{0, 1.0}, {1, 1.0}}),   // item 1: cos = 1
      SparseVector::FromPairs({{1, 1.0}}),             // item 2: cos ~ 0.707
      SparseVector::FromPairs({{2, 1.0}}),             // item 3: orthogonal
      SparseVector::FromPairs({{0, 1.0}, {1, 1.0}}),   // item 4: the target
  };
  const RatingMatrix m = MatrixFromTriples({{0, 0, 1}, {0, 1, 5}, {0, 2, 1}});
  ContentBasedOptions options;
  options.max_neighbors = 1;
  const auto estimator =
      std::move(ContentBasedEstimator::Create(&m, features, options))
          .ValueOrDie();
  const auto p = estimator.Predict(0, 4);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(*p, 5.0, 1e-12);  // only item 1 (cos 1.0) survives the cap
}

TEST(ContentBasedTest, PredictAllSkipsUndefined) {
  const RatingMatrix m = MatrixFromTriples({{0, 0, 5}});
  const auto estimator =
      std::move(ContentBasedEstimator::Create(&m, Features())).ValueOrDie();
  const std::vector<ScoredItem> out = estimator.PredictAll(0, {1, 2, 3, 4});
  // Items 2 and 3 are orthogonal to everything the user rated.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].item, 1);
  EXPECT_EQ(out[1].item, 4);
}

}  // namespace
}  // namespace fairrec
