#include "cf/top_k.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"

namespace fairrec {
namespace {

TEST(TopKTest, SelectsHighestScores) {
  const std::vector<ScoredItem> scored{{0, 1.0}, {1, 5.0}, {2, 3.0}, {3, 4.0}};
  const std::vector<ScoredItem> top = SelectTopK(scored, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], (ScoredItem{1, 5.0}));
  EXPECT_EQ(top[1], (ScoredItem{3, 4.0}));
}

TEST(TopKTest, TieBreaksByAscendingItemId) {
  const std::vector<ScoredItem> scored{{5, 2.0}, {1, 2.0}, {3, 2.0}};
  const std::vector<ScoredItem> top = SelectTopK(scored, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item, 1);
  EXPECT_EQ(top[1].item, 3);
}

TEST(TopKTest, KLargerThanInput) {
  const std::vector<ScoredItem> scored{{0, 1.0}, {1, 2.0}};
  EXPECT_EQ(SelectTopK(scored, 10).size(), 2u);
}

TEST(TopKTest, NonPositiveKIsEmpty) {
  const std::vector<ScoredItem> scored{{0, 1.0}};
  EXPECT_TRUE(SelectTopK(scored, 0).empty());
  EXPECT_TRUE(SelectTopK(scored, -3).empty());
}

TEST(TopKTest, EmptyInput) {
  EXPECT_TRUE(SelectTopK({}, 5).empty());
}

TEST(TopKTest, MatchesFullSortOnRandomInput) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<ScoredItem> scored;
    const int n = static_cast<int>(rng.UniformInt(1, 200));
    for (int i = 0; i < n; ++i) {
      // Coarse scores force plenty of ties.
      scored.push_back({i, static_cast<double>(rng.UniformInt(0, 9))});
    }
    const int k = static_cast<int>(rng.UniformInt(1, 50));
    std::vector<ScoredItem> reference = scored;
    std::sort(reference.begin(), reference.end(), ScoredItemBetter);
    reference.resize(std::min<size_t>(reference.size(), static_cast<size_t>(k)));
    EXPECT_EQ(SelectTopK(scored, k), reference) << "trial " << trial;
  }
}

TEST(ScoredItemBetterTest, TotalOrder) {
  EXPECT_TRUE(ScoredItemBetter({0, 2.0}, {1, 1.0}));
  EXPECT_FALSE(ScoredItemBetter({1, 1.0}, {0, 2.0}));
  EXPECT_TRUE(ScoredItemBetter({0, 1.0}, {1, 1.0}));   // tie -> smaller id
  EXPECT_FALSE(ScoredItemBetter({1, 1.0}, {0, 1.0}));
  EXPECT_FALSE(ScoredItemBetter({0, 1.0}, {0, 1.0}));  // irreflexive
}

}  // namespace
}  // namespace fairrec
