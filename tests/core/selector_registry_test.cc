#include "core/selector_registry.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "tests/core/test_fixtures.h"

namespace fairrec {
namespace {

using testing_fixtures::RandomContext;

TEST(SelectorOptionBagTest, ParsesTypedValues) {
  const SelectorOptionBag bag =
      std::move(SelectorOptionBag::Parse("a=3,b=0.5,c=true,d=text"))
          .ValueOrDie();
  EXPECT_EQ(std::move(bag.GetInt("a", 0)).ValueOrDie(), 3);
  EXPECT_DOUBLE_EQ(std::move(bag.GetDouble("b", 0.0)).ValueOrDie(), 0.5);
  EXPECT_TRUE(std::move(bag.GetBool("c", false)).ValueOrDie());
  EXPECT_EQ(bag.GetString("d", ""), "text");
  EXPECT_TRUE(bag.UnconsumedKeys().empty());
}

TEST(SelectorOptionBagTest, AbsentKeysYieldDefaults) {
  const SelectorOptionBag bag;
  EXPECT_EQ(std::move(bag.GetInt("missing", 42)).ValueOrDie(), 42);
  EXPECT_FALSE(std::move(bag.GetBool("missing", false)).ValueOrDie());
  EXPECT_TRUE(bag.empty());
}

TEST(SelectorOptionBagTest, RejectsMalformedSpecs) {
  EXPECT_TRUE(SelectorOptionBag::Parse("novalue").status().IsInvalidArgument());
  EXPECT_TRUE(SelectorOptionBag::Parse("=3").status().IsInvalidArgument());
  EXPECT_TRUE(SelectorOptionBag::Parse("a=1,a=2").status().IsInvalidArgument());
}

TEST(SelectorOptionBagTest, UnparsableValuesAreInvalidArgument) {
  const SelectorOptionBag bag =
      std::move(SelectorOptionBag::Parse("a=abc,b=maybe")).ValueOrDie();
  EXPECT_TRUE(bag.GetInt("a", 0).status().IsInvalidArgument());
  EXPECT_TRUE(bag.GetBool("b", false).status().IsInvalidArgument());
}

TEST(SelectorOptionBagTest, TracksUnconsumedKeys) {
  const SelectorOptionBag bag =
      std::move(SelectorOptionBag::Parse("used=1,typo=2")).ValueOrDie();
  EXPECT_EQ(std::move(bag.GetInt("used", 0)).ValueOrDie(), 1);
  EXPECT_EQ(bag.UnconsumedKeys(), std::vector<std::string>{"typo"});
}

TEST(SelectorRegistryTest, ListsTheBuiltinZoo) {
  const std::vector<std::string> names = SelectorRegistry::Global().Names();
  for (const char* expected :
       {"algorithm1", "brute-force", "envy-swap", "fair-package",
        "greedy-value", "least-misery", "local-search"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) != names.end())
        << expected;
  }
}

TEST(SelectorRegistryTest, CreatedSelectorsAnswerToTheirRegisteredName) {
  // The registry round trip: every listed name constructs a selector whose
  // name() is the canonical registration, and whose metadata is coherent.
  for (const SelectorInfo& info : SelectorRegistry::Global().List()) {
    const std::unique_ptr<ItemSetSelector> selector =
        std::move(SelectorRegistry::Global().Create(info.name)).ValueOrDie();
    EXPECT_EQ(selector->name(), info.name);
    EXPECT_FALSE(info.summary.empty()) << info.name;
    EXPECT_FALSE(info.objective.empty()) << info.name;
    EXPECT_TRUE(SelectorRegistry::Global().Has(info.name));
    for (const std::string& alias : info.aliases) {
      EXPECT_TRUE(SelectorRegistry::Global().Has(alias)) << alias;
      const std::unique_ptr<ItemSetSelector> via_alias =
          std::move(SelectorRegistry::Global().Create(alias)).ValueOrDie();
      EXPECT_EQ(via_alias->name(), info.name) << alias;
    }
  }
}

TEST(SelectorRegistryTest, UnknownNamesAreInvalidArgument) {
  EXPECT_TRUE(
      SelectorRegistry::Global().Create("no-such").status().IsInvalidArgument());
  EXPECT_TRUE(SelectorRegistry::Global()
                  .Describe("no-such")
                  .status()
                  .IsInvalidArgument());
  EXPECT_FALSE(SelectorRegistry::Global().Has("no-such"));
}

TEST(SelectorRegistryTest, TypoedOptionKeysAreInvalidArgument) {
  // "max_swap" (missing s) must not silently fall back to the default.
  EXPECT_TRUE(SelectorRegistry::Global()
                  .CreateFromSpec("local-search:max_swap=5")
                  .status()
                  .IsInvalidArgument());
}

TEST(SelectorRegistryTest, SpecOptionsReachTheSelector) {
  Rng rng(4242);
  GroupContextOptions options;
  options.top_k = 3;
  const GroupContext ctx = RandomContext(rng, 3, 10, options);

  // max_swaps=0 freezes local search at its seed; the default improves on
  // it or matches it, never does worse.
  const std::unique_ptr<ItemSetSelector> frozen =
      std::move(SelectorRegistry::Global().CreateFromSpec(
                    "local-search:max_swaps=0"))
          .ValueOrDie();
  const std::unique_ptr<ItemSetSelector> free_running =
      std::move(SelectorRegistry::Global().CreateFromSpec("local-search"))
          .ValueOrDie();
  const Selection a = std::move(frozen->Select(ctx, 4)).ValueOrDie();
  const Selection b = std::move(free_running->Select(ctx, 4)).ValueOrDie();
  EXPECT_GE(b.score.value, a.score.value - 1e-12);
}

TEST(SelectorRegistryTest, InvalidOptionValuesAreInvalidArgument) {
  EXPECT_TRUE(SelectorRegistry::Global()
                  .CreateFromSpec("brute-force:max_combinations=-1")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SelectorRegistry::Global()
                  .CreateFromSpec("fair-package:min_per_member=0")
                  .status()
                  .IsInvalidArgument());
}

TEST(SelectorRegistryTest, RegisterRejectsCollisions) {
  SelectorInfo info;
  info.name = "algorithm1";  // collides with the builtin
  const Status status = SelectorRegistry::Global().Register(
      info, [](const SelectorOptionBag&) -> Result<std::unique_ptr<ItemSetSelector>> {
        return Status::Internal("never called");
      });
  EXPECT_TRUE(status.IsAlreadyExists());
}

}  // namespace
}  // namespace fairrec
