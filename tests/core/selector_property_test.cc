#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/fairness_heuristic.h"
#include "core/greedy_selector.h"
#include "core/selector_registry.h"
#include "tests/core/test_fixtures.h"

namespace fairrec {
namespace {

using testing_fixtures::RandomContext;

/// One instance of every registered selector, default options.
std::vector<std::unique_ptr<ItemSetSelector>> WholeZoo() {
  std::vector<std::unique_ptr<ItemSetSelector>> zoo;
  for (const std::string& name : SelectorRegistry::Global().Names()) {
    zoo.push_back(
        std::move(SelectorRegistry::Global().Create(name)).ValueOrDie());
  }
  return zoo;
}

// Cross-selector invariants on randomized instances:
//  * the brute force is an upper bound on every heuristic's value;
//  * every selector returns exactly min(z, m) distinct candidate items;
//  * every reported score matches an independent recomputation.
struct SelectorParam {
  int32_t group_size;
  int32_t num_candidates;
  int32_t top_k;
  int32_t z;
  AggregationKind aggregation;
  uint64_t seed;
};

class SelectorProperties : public ::testing::TestWithParam<SelectorParam> {};

TEST_P(SelectorProperties, BruteForceDominatesHeuristics) {
  const SelectorParam p = GetParam();
  Rng rng(p.seed);
  GroupContextOptions options;
  options.top_k = p.top_k;
  options.aggregation = p.aggregation;
  const GroupContext ctx =
      RandomContext(rng, p.group_size, p.num_candidates, options);

  const BruteForceSelector brute_force;
  const Selection exact = std::move(brute_force.Select(ctx, p.z)).ValueOrDie();
  for (const std::unique_ptr<ItemSetSelector>& selector : WholeZoo()) {
    const Selection s = std::move(selector->Select(ctx, p.z)).ValueOrDie();
    EXPECT_GE(exact.score.value, s.score.value - 1e-9) << selector->name();
  }
}

TEST_P(SelectorProperties, AllSelectorsReturnConsistentSelections) {
  const SelectorParam p = GetParam();
  Rng rng(p.seed ^ 0xabcdef);
  GroupContextOptions options;
  options.top_k = p.top_k;
  options.aggregation = p.aggregation;
  const GroupContext ctx =
      RandomContext(rng, p.group_size, p.num_candidates, options);

  const size_t expected =
      static_cast<size_t>(std::min(p.z, p.num_candidates));
  for (const std::unique_ptr<ItemSetSelector>& selector : WholeZoo()) {
    const Selection s = std::move(selector->Select(ctx, p.z)).ValueOrDie();
    EXPECT_EQ(s.items.size(), expected) << selector->name();
    const ValueBreakdown recomputed = EvaluateSelectionByItems(ctx, s.items);
    EXPECT_NEAR(s.score.value, recomputed.value, 1e-9) << selector->name();
    EXPECT_DOUBLE_EQ(s.score.fairness, recomputed.fairness) << selector->name();
    // Every selected item must be a known candidate.
    for (const ItemId item : s.items) {
      EXPECT_GE(ctx.CandidateIndexOf(item), 0) << selector->name();
    }
    // The per-member decomposition covers the whole group and agrees with
    // the fairness factor.
    ASSERT_EQ(static_cast<int32_t>(s.members.size()), ctx.group_size())
        << selector->name();
    int32_t satisfied = 0;
    for (const MemberBreakdown& row : s.members) {
      if (row.satisfied) ++satisfied;
    }
    EXPECT_DOUBLE_EQ(static_cast<double>(satisfied) /
                         static_cast<double>(ctx.group_size()),
                     s.score.fairness)
        << selector->name();
    // Selectors are deterministic: a second call returns the same set.
    const Selection again = std::move(selector->Select(ctx, p.z)).ValueOrDie();
    EXPECT_EQ(again.items, s.items) << selector->name();
  }
}

TEST_P(SelectorProperties, Proposition1ObservableOnBothPaperSelectors) {
  // Table II's side observation: "the fairness of the produced results are
  // identical in both cases verifying Proposition 1". With z >= |G| the
  // heuristic reaches fairness 1 by construction, and the brute force (which
  // maximizes fairness * relevance) matched it on every instance the paper
  // ran; verify the heuristic guarantee and report the brute force fairness
  // as >= heuristic's only when the optimum has fairness 1.
  const SelectorParam p = GetParam();
  if (p.z < p.group_size || p.z > p.num_candidates) GTEST_SKIP();
  Rng rng(p.seed * 7 + 3);
  GroupContextOptions options;
  options.top_k = p.top_k;
  options.aggregation = p.aggregation;
  const GroupContext ctx =
      RandomContext(rng, p.group_size, p.num_candidates, options);
  const FairnessHeuristic heuristic;
  const Selection s = std::move(heuristic.Select(ctx, p.z)).ValueOrDie();
  EXPECT_DOUBLE_EQ(s.score.fairness, 1.0);
}

std::vector<SelectorParam> Grid() {
  std::vector<SelectorParam> grid;
  uint64_t seed = 9000;
  for (const int32_t g : {2, 3, 5}) {
    for (const int32_t m : {8, 12}) {
      for (const int32_t k : {2, 5}) {
        for (const int32_t z : {2, 5, 7}) {
          for (const auto kind :
               {AggregationKind::kMinimum, AggregationKind::kAverage}) {
            if (z >= m) continue;
            grid.push_back({g, m, k, z, kind, seed++});
          }
        }
      }
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SelectorProperties,
                         ::testing::ValuesIn(Grid()));

}  // namespace
}  // namespace fairrec
