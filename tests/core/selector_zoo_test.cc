#include <vector>

#include <gtest/gtest.h>

#include "core/envy_swap_selector.h"
#include "core/fair_package_selector.h"
#include "core/least_misery_selector.h"
#include "tests/core/test_fixtures.h"

namespace fairrec {
namespace {

using testing_fixtures::ContextFromDense;
using testing_fixtures::kNaN;

// ---- least-misery ---------------------------------------------------------

TEST(LeastMiserySelectorTest, MaximizesTheWorstMembersMass) {
  // item2 is the only candidate both members score; the least-misery greedy
  // must take it first (it lifts the minimum mass to 6, every alternative
  // leaves a member at 0), then break the item0/item1 tie toward the
  // smaller item id.
  GroupContextOptions options;
  options.top_k = 1;
  const GroupContext ctx = ContextFromDense(
      {
          {10.0, 0.0, 6.0, 0.0},
          {0.0, 10.0, 6.0, 0.0},
      },
      options);
  const LeastMiserySelector selector;
  const Selection s = std::move(selector.Select(ctx, 2)).ValueOrDie();
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[0], 2);
  EXPECT_EQ(s.items[1], 0);
}

TEST(LeastMiserySelectorTest, RejectsNonPositiveZ) {
  GroupContextOptions options;
  options.top_k = 1;
  const GroupContext ctx = ContextFromDense({{1.0, 2.0}}, options);
  const LeastMiserySelector selector;
  EXPECT_TRUE(selector.Select(ctx, 0).status().IsInvalidArgument());
}

// ---- envy-swap ------------------------------------------------------------

TEST(EnvySwapSelectorTest, SwapsTowardTheEnvyFreeItem) {
  // Seed (best group relevance) is item0: satisfactions (1.0, 0.8), envy
  // 0.2. item2 offers (0.9, 0.9) — envy-free — at lower group relevance;
  // the lexicographic objective (envy first) must take the swap.
  GroupContextOptions options;
  options.top_k = 1;
  const GroupContext ctx = ContextFromDense(
      {
          {10.0, 8.0, 9.0},
          {4.0, 5.0, 4.5},
      },
      options);
  const EnvySwapSelector selector;
  const Selection s = std::move(selector.Select(ctx, 1)).ValueOrDie();
  ASSERT_EQ(s.items.size(), 1u);
  EXPECT_EQ(s.items[0], 2);
}

TEST(EnvySwapSelectorTest, ZeroSwapsKeepsTheGroupRelevanceSeed) {
  GroupContextOptions options;
  options.top_k = 1;
  const GroupContext ctx = ContextFromDense(
      {
          {10.0, 8.0, 9.0},
          {4.0, 5.0, 4.5},
      },
      options);
  EnvySwapOptions swap_options;
  swap_options.max_swaps = 0;
  const EnvySwapSelector selector(swap_options);
  const Selection s = std::move(selector.Select(ctx, 1)).ValueOrDie();
  ASSERT_EQ(s.items.size(), 1u);
  EXPECT_EQ(s.items[0], 0);  // best average group relevance
}

// ---- fair-package ---------------------------------------------------------

TEST(FairPackageSelectorTest, MaximizesMembersAtQuotaThenRelevance) {
  // Three members whose A_u are disjoint singletons; z=2 can cover only
  // two. Best coverage-2 package by relevance: item2 (top group relevance)
  // plus item0 (the smaller-id half of the item0/item1 tie).
  GroupContextOptions options;
  options.top_k = 1;
  const GroupContext ctx = ContextFromDense(
      {
          {10.0, 0.0, 1.0},
          {0.0, 10.0, 1.0},
          {0.0, 0.0, 10.0},
      },
      options);
  const FairPackageSelector selector;
  const Selection s = std::move(selector.Select(ctx, 2)).ValueOrDie();
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[0], 2);  // descending-relevance selection order
  EXPECT_EQ(s.items[1], 0);
  EXPECT_DOUBLE_EQ(s.score.fairness, 2.0 / 3.0);
}

TEST(FairPackageSelectorTest, CoversEveryoneWhenThePackageIsLargeEnough) {
  GroupContextOptions options;
  options.top_k = 1;
  const GroupContext ctx = ContextFromDense(
      {
          {10.0, 0.0, 1.0},
          {0.0, 10.0, 1.0},
          {0.0, 0.0, 10.0},
      },
      options);
  const FairPackageSelector selector;
  const Selection s = std::move(selector.Select(ctx, 3)).ValueOrDie();
  EXPECT_EQ(s.items.size(), 3u);
  EXPECT_DOUBLE_EQ(s.score.fairness, 1.0);
}

TEST(FairPackageSelectorTest, NodeCapFallsBackToTopRelevance) {
  GroupContextOptions options;
  options.top_k = 1;
  const GroupContext ctx = ContextFromDense(
      {
          {10.0, 0.0, 1.0},
          {0.0, 10.0, 1.0},
          {0.0, 0.0, 10.0},
      },
      options);
  FairPackageOptions package_options;
  package_options.max_nodes = 1;  // fires before any leaf
  const FairPackageSelector selector(package_options);
  const Selection s = std::move(selector.Select(ctx, 2)).ValueOrDie();
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[0], 2);
  EXPECT_EQ(s.items[1], 0);
}

TEST(FairPackageSelectorTest, RejectsInvalidOptions) {
  GroupContextOptions options;
  options.top_k = 1;
  const GroupContext ctx = ContextFromDense({{1.0, 2.0}}, options);
  FairPackageOptions package_options;
  package_options.min_per_member = 0;
  const FairPackageSelector selector(package_options);
  EXPECT_TRUE(selector.Select(ctx, 1).status().IsInvalidArgument());
  const FairPackageSelector ok_selector;
  EXPECT_TRUE(ok_selector.Select(ctx, 0).status().IsInvalidArgument());
}

TEST(FairPackageSelectorTest, UndefinedMembersHaveZeroQuota) {
  // member1 scores nothing anywhere: their quota is 0, so they are covered
  // from the start and cannot block full coverage.
  GroupContextOptions options;
  options.top_k = 1;
  options.require_all_members = false;
  const GroupContext ctx = ContextFromDense(
      {
          {10.0, 2.0},
          {kNaN, kNaN},
      },
      options);
  const FairPackageSelector selector;
  const Selection s = std::move(selector.Select(ctx, 1)).ValueOrDie();
  ASSERT_EQ(s.items.size(), 1u);
  EXPECT_EQ(s.items[0], 0);
}

}  // namespace
}  // namespace fairrec
