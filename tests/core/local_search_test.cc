#include "core/local_search.h"

#include <set>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "tests/core/test_fixtures.h"

namespace fairrec {
namespace {

using testing_fixtures::ContextFromDense;
using testing_fixtures::RandomContext;

TEST(LocalSearchTest, RejectsNonPositiveZ) {
  const LocalSearchSelector selector;
  const GroupContext ctx = ContextFromDense({{3.0}});
  EXPECT_TRUE(selector.Select(ctx, 0).status().IsInvalidArgument());
}

TEST(LocalSearchTest, NeverWorseThanItsSeed) {
  Rng rng(13);
  const FairnessHeuristic seed;
  const LocalSearchSelector selector;
  for (int trial = 0; trial < 10; ++trial) {
    GroupContextOptions options;
    options.top_k = 4;
    const GroupContext ctx = RandomContext(rng, 4, 16, options);
    const Selection seeded = std::move(seed.Select(ctx, 6)).ValueOrDie();
    const Selection improved = std::move(selector.Select(ctx, 6)).ValueOrDie();
    EXPECT_GE(improved.score.value, seeded.score.value - 1e-12)
        << "trial " << trial;
  }
}

TEST(LocalSearchTest, ReachesTheOptimumOnSmallInstances) {
  Rng rng(29);
  const LocalSearchSelector selector;
  const BruteForceSelector brute_force;
  int optimal_hits = 0;
  const int trials = 12;
  for (int trial = 0; trial < trials; ++trial) {
    GroupContextOptions options;
    options.top_k = 3;
    const GroupContext ctx = RandomContext(rng, 3, 10, options);
    const Selection ls = std::move(selector.Select(ctx, 4)).ValueOrDie();
    const Selection opt = std::move(brute_force.Select(ctx, 4)).ValueOrDie();
    EXPECT_LE(ls.score.value, opt.score.value + 1e-9);
    if (ls.score.value >= opt.score.value - 1e-9) ++optimal_hits;
  }
  // Hill climbing from the Algorithm 1 seed lands on the exact optimum in
  // the large majority of small random instances.
  EXPECT_GE(optimal_hits, trials / 2);
}

TEST(LocalSearchTest, SelectionSizeAndUniqueness) {
  Rng rng(31);
  const LocalSearchSelector selector;
  const GroupContext ctx = RandomContext(rng, 4, 15);
  for (const int32_t z : {1, 5, 15, 30}) {
    const Selection s = std::move(selector.Select(ctx, z)).ValueOrDie();
    EXPECT_EQ(s.items.size(), static_cast<size_t>(std::min(z, 15)));
    const std::set<ItemId> unique(s.items.begin(), s.items.end());
    EXPECT_EQ(unique.size(), s.items.size());
  }
}

TEST(LocalSearchTest, ReportedScoreMatchesRecomputation) {
  Rng rng(37);
  const LocalSearchSelector selector;
  const GroupContext ctx = RandomContext(rng, 3, 12);
  const Selection s = std::move(selector.Select(ctx, 5)).ValueOrDie();
  const ValueBreakdown recomputed = EvaluateSelectionByItems(ctx, s.items);
  EXPECT_NEAR(s.score.value, recomputed.value, 1e-9);
  EXPECT_DOUBLE_EQ(s.score.fairness, recomputed.fairness);
}

TEST(LocalSearchTest, GroupRelevanceSeedAlsoWorks) {
  Rng rng(41);
  LocalSearchOptions options;
  options.seed_with_algorithm1 = false;
  const LocalSearchSelector selector(options);
  const GroupContext ctx = RandomContext(rng, 4, 14);
  const Selection s = std::move(selector.Select(ctx, 5)).ValueOrDie();
  EXPECT_EQ(s.items.size(), 5u);
  // The greedy-by-relevance seed scores sum-of-top-5; local search must not
  // fall below the trivially achievable value of that seed.
  EXPECT_GT(s.score.value, 0.0);
}

TEST(LocalSearchTest, MaxSwapsZeroReturnsSeed) {
  Rng rng(43);
  LocalSearchOptions options;
  options.max_swaps = 0;
  const LocalSearchSelector frozen(options);
  const FairnessHeuristic seed;
  const GroupContext ctx = RandomContext(rng, 3, 12);
  const Selection a = std::move(frozen.Select(ctx, 5)).ValueOrDie();
  const Selection b = std::move(seed.Select(ctx, 5)).ValueOrDie();
  const std::set<ItemId> sa(a.items.begin(), a.items.end());
  const std::set<ItemId> sb(b.items.begin(), b.items.end());
  EXPECT_EQ(sa, sb);
}

}  // namespace
}  // namespace fairrec
