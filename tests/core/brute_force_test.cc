#include "core/brute_force.h"

#include <set>

#include <gtest/gtest.h>

#include "tests/core/test_fixtures.h"

namespace fairrec {
namespace {

using testing_fixtures::ContextFromDense;
using testing_fixtures::NaiveBruteForce;
using testing_fixtures::RandomContext;

TEST(CountCombinationsTest, KnownValues) {
  EXPECT_EQ(BruteForceSelector::CountCombinations(10, 4), 210u);
  EXPECT_EQ(BruteForceSelector::CountCombinations(20, 8), 125970u);
  EXPECT_EQ(BruteForceSelector::CountCombinations(30, 16), 145422675u);
  EXPECT_EQ(BruteForceSelector::CountCombinations(30, 20), 30045015u);
  EXPECT_EQ(BruteForceSelector::CountCombinations(5, 0), 1u);
  EXPECT_EQ(BruteForceSelector::CountCombinations(5, 5), 1u);
  EXPECT_EQ(BruteForceSelector::CountCombinations(5, 6), 0u);
  EXPECT_EQ(BruteForceSelector::CountCombinations(5, -1), 0u);
}

TEST(CountCombinationsTest, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(BruteForceSelector::CountCombinations(200, 100), UINT64_MAX);
}

TEST(BruteForceTest, RejectsNonPositiveZ) {
  const BruteForceSelector selector;
  const GroupContext ctx = ContextFromDense({{3.0}});
  EXPECT_TRUE(selector.Select(ctx, 0).status().IsInvalidArgument());
}

TEST(BruteForceTest, ZGeqMSelectsEverything) {
  const BruteForceSelector selector;
  const GroupContext ctx = ContextFromDense({{3.0, 4.0, 5.0}});
  const Selection selection = std::move(selector.Select(ctx, 3)).ValueOrDie();
  EXPECT_EQ(selection.items.size(), 3u);
  const Selection bigger = std::move(selector.Select(ctx, 10)).ValueOrDie();
  EXPECT_EQ(bigger.items.size(), 3u);
}

TEST(BruteForceTest, CombinationCapRefusesOversizedRuns) {
  BruteForceOptions options;
  options.max_combinations = 10;
  const BruteForceSelector selector(options);
  Rng rng(5);
  const GroupContext ctx = RandomContext(rng, 2, 10);
  // C(10, 4) = 210 > 10.
  EXPECT_TRUE(selector.Select(ctx, 4).status().IsFailedPrecondition());
  // C(10, 9) = 10 <= 10 runs fine.
  EXPECT_TRUE(selector.Select(ctx, 9).ok());
}

TEST(BruteForceTest, HandCraftedOptimum) {
  // Two members, top_k = 1: A_0 = {0}, A_1 = {3}. Group relevance (avg):
  // item0 3.5, item1 3.45, item2 3.4, item3 3.5.
  // z=2: candidates {0,3} give value 1.0 * 7.0 = 7.0 — the unique optimum
  // (any other pair has fairness <= 0.5 -> value <= 3.475).
  GroupContextOptions options;
  options.top_k = 1;
  const GroupContext ctx = ContextFromDense(
      {{5.0, 4.0, 3.0, 2.0}, {2.0, 2.9, 3.8, 5.0}}, options);
  const BruteForceSelector selector;
  const Selection selection = std::move(selector.Select(ctx, 2)).ValueOrDie();
  EXPECT_EQ(selection.items, (std::vector<ItemId>{0, 3}));
  EXPECT_DOUBLE_EQ(selection.score.fairness, 1.0);
  EXPECT_NEAR(selection.score.value, 7.0, 1e-12);
}

TEST(BruteForceTest, ReportedScoreMatchesRecomputation) {
  Rng rng(606);
  const GroupContext ctx = RandomContext(rng, 3, 12);
  const BruteForceSelector selector;
  const Selection selection = std::move(selector.Select(ctx, 5)).ValueOrDie();
  const ValueBreakdown recomputed =
      EvaluateSelectionByItems(ctx, selection.items);
  EXPECT_NEAR(selection.score.value, recomputed.value, 1e-9);
  EXPECT_DOUBLE_EQ(selection.score.fairness, recomputed.fairness);
  const std::set<ItemId> unique(selection.items.begin(), selection.items.end());
  EXPECT_EQ(unique.size(), selection.items.size());
}

// Property: the incremental enumerator finds the same optimal value as a
// plain recursive reference on random instances.
struct BruteForceParam {
  int32_t group_size;
  int32_t num_candidates;
  int32_t top_k;
  int32_t z;
  uint64_t seed;
};

class BruteForceEquivalence : public ::testing::TestWithParam<BruteForceParam> {};

TEST_P(BruteForceEquivalence, MatchesNaiveReference) {
  const BruteForceParam p = GetParam();
  Rng rng(p.seed);
  GroupContextOptions options;
  options.top_k = p.top_k;
  const GroupContext ctx =
      RandomContext(rng, p.group_size, p.num_candidates, options);
  const BruteForceSelector selector;
  const Selection fast = std::move(selector.Select(ctx, p.z)).ValueOrDie();
  const Selection naive = NaiveBruteForce(ctx, p.z);
  EXPECT_NEAR(fast.score.value, naive.score.value, 1e-9)
      << "G=" << p.group_size << " m=" << p.num_candidates << " z=" << p.z;
  EXPECT_DOUBLE_EQ(fast.score.fairness, naive.score.fairness);
}

std::vector<BruteForceParam> BruteForceGrid() {
  std::vector<BruteForceParam> grid;
  uint64_t seed = 100;
  for (const int32_t g : {2, 4}) {
    for (const int32_t m : {6, 10, 14}) {
      for (const int32_t k : {1, 4}) {
        for (const int32_t z : {2, 4, 6}) {
          if (z >= m) continue;
          grid.push_back({g, m, k, z, seed++});
        }
      }
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, BruteForceEquivalence,
                         ::testing::ValuesIn(BruteForceGrid()));

}  // namespace
}  // namespace fairrec
