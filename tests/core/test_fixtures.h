#ifndef FAIRREC_TESTS_CORE_TEST_FIXTURES_H_
#define FAIRREC_TESTS_CORE_TEST_FIXTURES_H_

#include <cmath>
#include <limits>
#include <vector>

#include "cf/top_k.h"
#include "common/random.h"
#include "core/fairness.h"
#include "core/group_context.h"
#include "core/selector.h"

namespace fairrec {
namespace testing_fixtures {

inline constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Builds per-member relevance tables from a dense score grid:
/// scores[member][item], NaN marking "undefined for this member".
inline std::vector<MemberRelevance> MembersFromDense(
    const std::vector<std::vector<double>>& scores, int32_t top_k) {
  std::vector<MemberRelevance> members;
  for (size_t m = 0; m < scores.size(); ++m) {
    MemberRelevance member;
    member.user = static_cast<UserId>(m);
    for (size_t i = 0; i < scores[m].size(); ++i) {
      if (!std::isnan(scores[m][i])) {
        member.relevance.push_back({static_cast<ItemId>(i), scores[m][i]});
      }
    }
    member.top_k = SelectTopK(member.relevance, top_k);
    members.push_back(std::move(member));
  }
  return members;
}

/// One-call context construction from a dense grid.
inline GroupContext ContextFromDense(
    const std::vector<std::vector<double>>& scores,
    GroupContextOptions options = {}) {
  return std::move(GroupContext::Build(MembersFromDense(scores, options.top_k),
                                       options))
      .ValueOrDie();
}

/// A random fully-defined instance for property tests: every member scores
/// every item in [1, 5].
inline GroupContext RandomContext(Rng& rng, int32_t num_members,
                                  int32_t num_items,
                                  GroupContextOptions options = {}) {
  std::vector<std::vector<double>> scores(
      static_cast<size_t>(num_members),
      std::vector<double>(static_cast<size_t>(num_items), 0.0));
  for (auto& row : scores) {
    for (double& s : row) s = rng.UniformReal(1.0, 5.0);
  }
  return ContextFromDense(scores, options);
}

/// Reference brute force: plain recursive enumeration in lexicographic order,
/// strict-improvement maximum (the same deterministic winner the optimized
/// enumerator must report).
inline Selection NaiveBruteForce(const GroupContext& context, int32_t z) {
  const int32_t m = context.num_candidates();
  std::vector<int32_t> best;
  double best_value = -1.0;
  std::vector<int32_t> combo;
  auto recurse = [&](auto&& self, int32_t next) -> void {
    if (static_cast<int32_t>(combo.size()) == std::min(z, m)) {
      const ValueBreakdown score = EvaluateSelection(context, combo);
      if (score.value > best_value) {
        best_value = score.value;
        best = combo;
      }
      return;
    }
    for (int32_t c = next; c < m; ++c) {
      combo.push_back(c);
      self(self, c + 1);
      combo.pop_back();
    }
  };
  recurse(recurse, 0);
  Selection out;
  out.score = EvaluateSelection(context, best);
  for (const int32_t c : best) out.items.push_back(context.candidate(c).item);
  return out;
}

}  // namespace testing_fixtures
}  // namespace fairrec

#endif  // FAIRREC_TESTS_CORE_TEST_FIXTURES_H_
