#include "core/greedy_selector.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "tests/core/test_fixtures.h"

namespace fairrec {
namespace {

using testing_fixtures::ContextFromDense;
using testing_fixtures::RandomContext;

TEST(GreedySelectorTest, RejectsNonPositiveZ) {
  const GreedyValueSelector selector;
  const GroupContext ctx = ContextFromDense({{3.0}});
  EXPECT_TRUE(selector.Select(ctx, -1).status().IsInvalidArgument());
}

TEST(GreedySelectorTest, PicksHighestValueFirst) {
  // Single member, top_k = 1: A_0 = {0}. First pick must be item 0 (only
  // item with non-zero fairness, value 1.0 * 5.0 = 5).
  GroupContextOptions options;
  options.top_k = 1;
  const GroupContext ctx = ContextFromDense({{5.0, 4.9, 4.8}}, options);
  const GreedyValueSelector selector;
  const Selection selection = std::move(selector.Select(ctx, 2)).ValueOrDie();
  ASSERT_EQ(selection.items.size(), 2u);
  EXPECT_EQ(selection.items[0], 0);
  EXPECT_EQ(selection.items[1], 1);  // then best marginal relevance
}

TEST(GreedySelectorTest, SizeAndUniqueness) {
  Rng rng(321);
  const GroupContext ctx = RandomContext(rng, 3, 18);
  const GreedyValueSelector selector;
  for (const int32_t z : {1, 5, 18, 30}) {
    const Selection selection = std::move(selector.Select(ctx, z)).ValueOrDie();
    EXPECT_EQ(selection.items.size(), static_cast<size_t>(std::min(z, 18)));
    const std::set<ItemId> unique(selection.items.begin(), selection.items.end());
    EXPECT_EQ(unique.size(), selection.items.size());
  }
}

TEST(GreedySelectorTest, ReportedScoreMatchesRecomputation) {
  Rng rng(654);
  const GroupContext ctx = RandomContext(rng, 4, 16);
  const GreedyValueSelector selector;
  const Selection selection = std::move(selector.Select(ctx, 7)).ValueOrDie();
  const ValueBreakdown recomputed =
      EvaluateSelectionByItems(ctx, selection.items);
  EXPECT_NEAR(selection.score.value, recomputed.value, 1e-9);
  EXPECT_DOUBLE_EQ(selection.score.fairness, recomputed.fairness);
}

TEST(GreedySelectorTest, GreedyValueNeverDecreasesWithLargerZ) {
  // value(D) grows monotonically along greedy's own path: each picked item
  // adds non-negative relevance and can only raise fairness.
  Rng rng(987);
  const GroupContext ctx = RandomContext(rng, 3, 14);
  const GreedyValueSelector selector;
  double previous = 0.0;
  for (int32_t z = 1; z <= 14; ++z) {
    const Selection s = std::move(selector.Select(ctx, z)).ValueOrDie();
    EXPECT_GE(s.score.value, previous - 1e-9) << "z=" << z;
    previous = s.score.value;
  }
}

}  // namespace
}  // namespace fairrec
