#include "core/group_recommender.h"

#include <type_traits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/fairness_heuristic.h"
#include "sim/pairwise_engine.h"
#include "sim/peer_index.h"
#include "sim/rating_similarity.h"

namespace fairrec {
namespace {

RatingMatrix SmallMatrix() {
  RatingMatrixBuilder builder;
  // 6 users x 8 items. Everyone rates items 0-5 with the same alternating
  // pattern (so every pair is a Pearson peer at delta = 0.1); items 6-7 are
  // rated only by odd users, leaving all-even groups a candidate pool that
  // their odd peers can predict into.
  for (UserId u = 0; u < 6; ++u) {
    for (ItemId i = 0; i < 6; ++i) {
      EXPECT_TRUE(builder.Add(u, i, i % 2 == 0 ? 5 : 2).ok());
    }
    if (u % 2 == 1) {
      EXPECT_TRUE(builder.Add(u, 6, 4).ok());
      EXPECT_TRUE(builder.Add(u, 7, 3).ok());
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

PeerIndex BuildPeers(const RatingMatrix& matrix) {
  const PairwiseSimilarityEngine engine(&matrix);
  PeerIndexOptions options;
  options.delta = 0.1;
  return std::move(engine.BuildPeerIndex(options)).ValueOrDie();
}

TEST(GroupRecommenderTest, IsMovableButNotCopyable) {
  EXPECT_TRUE(std::is_move_constructible_v<GroupRecommender>);
  EXPECT_TRUE(std::is_move_assignable_v<GroupRecommender>);
  EXPECT_FALSE(std::is_copy_constructible_v<GroupRecommender>);
  EXPECT_FALSE(std::is_copy_assignable_v<GroupRecommender>);
}

TEST(GroupRecommenderTest, OwnedRecommenderSurvivesMove) {
  const RatingMatrix matrix = SmallMatrix();
  const PeerIndex peers = BuildPeers(matrix);
  RecommenderOptions rec_options;
  rec_options.peers.delta = 0.1;
  rec_options.top_k = 3;

  GroupRecommender original(&matrix, &peers, rec_options, {});
  const Group group{0, 2, 4};
  const auto before = original.BuildContext(group);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  // Move-construct, then move-assign: the owned recommender rides along on
  // the heap, so the internal pointer stays valid in every destination.
  GroupRecommender moved(std::move(original));
  GroupRecommender assigned(&matrix, &peers, rec_options, {});
  assigned = std::move(moved);

  const auto after = assigned.BuildContext(group);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(after->num_candidates(), before->num_candidates());
  for (int32_t c = 0; c < after->num_candidates(); ++c) {
    EXPECT_EQ(after->candidate(c).item, before->candidate(c).item);
    EXPECT_EQ(after->candidate(c).group_relevance,
              before->candidate(c).group_relevance);
  }

  const FairnessHeuristic heuristic;
  const auto selection = assigned.RecommendFair(group, 2, heuristic);
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  EXPECT_EQ(selection->items.size(), 2u);
}

TEST(GroupRecommenderTest, MovedFacadeOverBorrowedRecommenderStillWorks) {
  const RatingMatrix matrix = SmallMatrix();
  const PeerIndex peers = BuildPeers(matrix);
  RecommenderOptions rec_options;
  rec_options.peers.delta = 0.1;
  const Recommender recommender(&matrix, &peers, rec_options);

  GroupRecommender original(&recommender, {});
  GroupRecommender moved(std::move(original));
  const auto context = moved.BuildContext({0, 2});
  ASSERT_TRUE(context.ok()) << context.status().ToString();
  EXPECT_GT(context->num_candidates(), 0);
}

}  // namespace
}  // namespace fairrec
