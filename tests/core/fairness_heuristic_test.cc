#include "core/fairness_heuristic.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "tests/core/test_fixtures.h"

namespace fairrec {
namespace {

using testing_fixtures::ContextFromDense;
using testing_fixtures::RandomContext;

TEST(FairnessHeuristicTest, RejectsNonPositiveZ) {
  const FairnessHeuristic heuristic;
  const GroupContext ctx = ContextFromDense({{3.0}});
  EXPECT_TRUE(heuristic.Select(ctx, 0).status().IsInvalidArgument());
  EXPECT_TRUE(heuristic.Select(ctx, -2).status().IsInvalidArgument());
}

TEST(FairnessHeuristicTest, FirstPickFollowsAlgorithm1Line7) {
  // Two members. Line 7 with (x=0, y=1): pick from A_u1 the item with max
  // relevance for u0. A_u1 (top_k=2) = {3, 2}; member 0 prefers item 2
  // (3.0 > 2.0), so item 2 must be selected first.
  GroupContextOptions options;
  options.top_k = 2;
  const GroupContext ctx =
      ContextFromDense({{5.0, 4.0, 3.0, 2.0}, {1.0, 2.0, 4.0, 5.0}}, options);
  const FairnessHeuristic heuristic;
  const Selection selection = std::move(heuristic.Select(ctx, 4)).ValueOrDie();
  ASSERT_FALSE(selection.items.empty());
  EXPECT_EQ(selection.items[0], 2);
  // Next pair (x=1, y=0): from A_u0 = {0, 1}, member 1 prefers item 1.
  ASSERT_GE(selection.items.size(), 2u);
  EXPECT_EQ(selection.items[1], 1);
}

TEST(FairnessHeuristicTest, TransposedVariantPicksFromAUx) {
  // pick_from_a_ux: (x=0, y=1) picks from A_u0 the item maximizing member
  // 1's relevance. A_u0 = {0, 1}; member 1 prefers item 1.
  GroupContextOptions options;
  options.top_k = 2;
  const GroupContext ctx =
      ContextFromDense({{5.0, 4.0, 3.0, 2.0}, {1.0, 2.0, 4.0, 5.0}}, options);
  FairnessHeuristicOptions heuristic_options;
  heuristic_options.pick_from_a_ux = true;
  const FairnessHeuristic heuristic(heuristic_options);
  const Selection selection = std::move(heuristic.Select(ctx, 4)).ValueOrDie();
  ASSERT_FALSE(selection.items.empty());
  EXPECT_EQ(selection.items[0], 1);
}

TEST(FairnessHeuristicTest, NoDuplicatesAndExactSize) {
  Rng rng(808);
  GroupContextOptions options;
  options.top_k = 5;
  const GroupContext ctx = RandomContext(rng, 4, 20, options);
  const FairnessHeuristic heuristic;
  for (const int32_t z : {1, 3, 7, 12, 20}) {
    const Selection selection = std::move(heuristic.Select(ctx, z)).ValueOrDie();
    EXPECT_EQ(selection.items.size(), static_cast<size_t>(std::min(z, 20)));
    const std::set<ItemId> unique(selection.items.begin(), selection.items.end());
    EXPECT_EQ(unique.size(), selection.items.size()) << "duplicates at z=" << z;
  }
}

TEST(FairnessHeuristicTest, ReportedScoreMatchesRecomputation) {
  Rng rng(909);
  const GroupContext ctx = RandomContext(rng, 3, 15);
  const FairnessHeuristic heuristic;
  const Selection selection = std::move(heuristic.Select(ctx, 6)).ValueOrDie();
  const ValueBreakdown recomputed =
      EvaluateSelectionByItems(ctx, selection.items);
  EXPECT_DOUBLE_EQ(selection.score.value, recomputed.value);
  EXPECT_DOUBLE_EQ(selection.score.fairness, recomputed.fairness);
}

TEST(FairnessHeuristicTest, TruncatesMidRoundAtExactlyZ) {
  Rng rng(111);
  const GroupContext ctx = RandomContext(rng, 5, 30);
  const FairnessHeuristic heuristic;
  // z = 3 < |G| = 5: the first round must stop partway.
  const Selection selection = std::move(heuristic.Select(ctx, 3)).ValueOrDie();
  EXPECT_EQ(selection.items.size(), 3u);
}

TEST(FairnessHeuristicTest, SingletonGroupFallsBackToFilling) {
  // With |G| = 1 there are no (x, y) pairs at all; Algorithm 1 alone returns
  // nothing, so the fill_shortfall path must produce the best candidates by
  // group relevance.
  const GroupContext ctx = ContextFromDense({{5.0, 3.0, 4.0}});
  const FairnessHeuristic heuristic;
  const Selection selection = std::move(heuristic.Select(ctx, 2)).ValueOrDie();
  ASSERT_EQ(selection.items.size(), 2u);
  EXPECT_EQ(selection.items[0], 0);  // relevance 5.0
  EXPECT_EQ(selection.items[1], 2);  // relevance 4.0
}

TEST(FairnessHeuristicTest, FillShortfallDisabledReturnsPureAlgorithm1) {
  const GroupContext ctx = ContextFromDense({{5.0, 3.0, 4.0}});
  FairnessHeuristicOptions options;
  options.fill_shortfall = false;
  const FairnessHeuristic heuristic(options);
  const Selection selection = std::move(heuristic.Select(ctx, 2)).ValueOrDie();
  EXPECT_TRUE(selection.items.empty());  // no pairs, no picks
}

TEST(FairnessHeuristicTest, ZLargerThanCandidatesSelectsEverything) {
  const GroupContext ctx = ContextFromDense({{5.0, 3.0}, {1.0, 2.0}});
  const FairnessHeuristic heuristic;
  const Selection selection = std::move(heuristic.Select(ctx, 10)).ValueOrDie();
  EXPECT_EQ(selection.items.size(), 2u);
  EXPECT_DOUBLE_EQ(selection.score.fairness, 1.0);
}

// Proposition 1: for Algorithm 1's output, z >= |G| implies fairness = 1.
// Swept over group sizes, candidate counts, top_k and z via parameterized
// tests on randomized instances.
struct Prop1Param {
  int32_t group_size;
  int32_t num_candidates;
  int32_t top_k;
  int32_t z;
  uint64_t seed;
};

class Proposition1Property : public ::testing::TestWithParam<Prop1Param> {};

TEST_P(Proposition1Property, FairnessIsOneWhenZGeqGroupSize) {
  const Prop1Param p = GetParam();
  Rng rng(p.seed);
  GroupContextOptions options;
  options.top_k = p.top_k;
  const GroupContext ctx =
      RandomContext(rng, p.group_size, p.num_candidates, options);
  const FairnessHeuristic heuristic;
  const Selection selection =
      std::move(heuristic.Select(ctx, p.z)).ValueOrDie();
  if (p.z >= p.group_size && p.z <= p.num_candidates) {
    EXPECT_DOUBLE_EQ(selection.score.fairness, 1.0)
        << "G=" << p.group_size << " m=" << p.num_candidates
        << " k=" << p.top_k << " z=" << p.z;
  }
  EXPECT_GE(selection.score.fairness, 0.0);
  EXPECT_LE(selection.score.fairness, 1.0);
}

std::vector<Prop1Param> Prop1Grid() {
  std::vector<Prop1Param> grid;
  uint64_t seed = 1;
  for (const int32_t g : {2, 3, 4, 6}) {
    for (const int32_t m : {8, 15, 30}) {
      for (const int32_t k : {1, 3, 8}) {
        for (const int32_t z : {2, 4, 8, 16}) {
          if (z > m) continue;
          grid.push_back({g, m, k, z, seed++});
        }
      }
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Proposition1Property,
                         ::testing::ValuesIn(Prop1Grid()));

}  // namespace
}  // namespace fairrec
