#include "core/fairness.h"

#include <gtest/gtest.h>

#include "tests/core/test_fixtures.h"

namespace fairrec {
namespace {

using testing_fixtures::ContextFromDense;

GroupContext TwoMemberContext() {
  // 4 items; member 0 loves low ids, member 1 loves high ids. top_k = 1:
  // A_0 = {item 0}, A_1 = {item 3}.
  GroupContextOptions options;
  options.top_k = 1;
  return ContextFromDense({{5.0, 4.0, 3.0, 2.0}, {2.0, 3.0, 4.0, 5.0}}, options);
}

TEST(FairnessTest, FairToMemberWhenTopItemIncluded) {
  const GroupContext ctx = TwoMemberContext();
  EXPECT_TRUE(IsFairToMember(ctx, 0, {0}));
  EXPECT_FALSE(IsFairToMember(ctx, 0, {1, 2, 3}));
  EXPECT_TRUE(IsFairToMember(ctx, 1, {3}));
  EXPECT_FALSE(IsFairToMember(ctx, 1, {0}));
}

TEST(FairnessTest, EmptySelectionIsFairToNobody) {
  const GroupContext ctx = TwoMemberContext();
  const ValueBreakdown score = EvaluateSelection(ctx, {});
  EXPECT_DOUBLE_EQ(score.fairness, 0.0);
  EXPECT_DOUBLE_EQ(score.relevance_sum, 0.0);
  EXPECT_DOUBLE_EQ(score.value, 0.0);
}

TEST(FairnessTest, Definition3Fraction) {
  const GroupContext ctx = TwoMemberContext();
  // {0}: fair to member 0 only -> 1/2.
  EXPECT_DOUBLE_EQ(EvaluateSelection(ctx, {0}).fairness, 0.5);
  // {0, 3}: fair to both -> 1.
  EXPECT_DOUBLE_EQ(EvaluateSelection(ctx, {0, 3}).fairness, 1.0);
  // {1, 2}: fair to neither -> 0.
  EXPECT_DOUBLE_EQ(EvaluateSelection(ctx, {1, 2}).fairness, 0.0);
}

TEST(FairnessTest, ValueIsFairnessTimesRelevanceSum) {
  const GroupContext ctx = TwoMemberContext();
  const ValueBreakdown score = EvaluateSelection(ctx, {0, 3});
  // Group relevance (average): item 0 -> 3.5, item 3 -> 3.5.
  EXPECT_DOUBLE_EQ(score.relevance_sum, 7.0);
  EXPECT_DOUBLE_EQ(score.fairness, 1.0);
  EXPECT_DOUBLE_EQ(score.value, 7.0);

  const ValueBreakdown half = EvaluateSelection(ctx, {0, 1});
  EXPECT_DOUBLE_EQ(half.fairness, 0.5);
  EXPECT_DOUBLE_EQ(half.relevance_sum, 3.5 + 3.5);
  EXPECT_DOUBLE_EQ(half.value, 0.5 * 7.0);
}

TEST(FairnessTest, ByItemsOverloadIgnoresUnknownItems) {
  const GroupContext ctx = TwoMemberContext();
  const ValueBreakdown score = EvaluateSelectionByItems(ctx, {0, 3, 42, -1});
  EXPECT_DOUBLE_EQ(score.fairness, 1.0);
  EXPECT_DOUBLE_EQ(score.relevance_sum, 7.0);
}

TEST(FairnessTest, FairnessMonotoneUnderSupersets) {
  const GroupContext ctx = TwoMemberContext();
  const double f1 = EvaluateSelection(ctx, {1}).fairness;
  const double f2 = EvaluateSelection(ctx, {1, 0}).fairness;
  const double f3 = EvaluateSelection(ctx, {1, 0, 3}).fairness;
  EXPECT_LE(f1, f2);
  EXPECT_LE(f2, f3);
}

TEST(FairnessTest, FairnessAlwaysWithinUnitInterval) {
  Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    GroupContextOptions options;
    options.top_k = 3;
    const GroupContext ctx = testing_fixtures::RandomContext(rng, 4, 12, options);
    std::vector<int32_t> selection;
    for (int32_t c = 0; c < ctx.num_candidates(); ++c) {
      if (rng.NextBool(0.3)) selection.push_back(c);
    }
    const ValueBreakdown score = EvaluateSelection(ctx, selection);
    EXPECT_GE(score.fairness, 0.0);
    EXPECT_LE(score.fairness, 1.0);
    EXPECT_GE(score.value, 0.0);
  }
}

}  // namespace
}  // namespace fairrec
