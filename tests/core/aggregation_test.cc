#include "core/aggregation.h"

#include <vector>

#include <gtest/gtest.h>

namespace fairrec {
namespace {

TEST(AggregationTest, Minimum) {
  const std::vector<double> scores{3.0, 1.5, 4.0};
  EXPECT_DOUBLE_EQ(Aggregate(scores, AggregationKind::kMinimum), 1.5);
}

TEST(AggregationTest, Average) {
  const std::vector<double> scores{3.0, 1.5, 4.5};
  EXPECT_DOUBLE_EQ(Aggregate(scores, AggregationKind::kAverage), 3.0);
}

TEST(AggregationTest, Maximum) {
  const std::vector<double> scores{3.0, 1.5, 4.5};
  EXPECT_DOUBLE_EQ(Aggregate(scores, AggregationKind::kMaximum), 4.5);
}

TEST(AggregationTest, SingletonIsIdentityForAllKinds) {
  const std::vector<double> one{2.5};
  for (const auto kind : {AggregationKind::kMinimum, AggregationKind::kAverage,
                          AggregationKind::kMaximum}) {
    EXPECT_DOUBLE_EQ(Aggregate(one, kind), 2.5);
  }
}

TEST(AggregationTest, MinLeqAvgLeqMax) {
  const std::vector<double> scores{1.0, 2.0, 5.0, 3.5};
  const double lo = Aggregate(scores, AggregationKind::kMinimum);
  const double mid = Aggregate(scores, AggregationKind::kAverage);
  const double hi = Aggregate(scores, AggregationKind::kMaximum);
  EXPECT_LE(lo, mid);
  EXPECT_LE(mid, hi);
}

TEST(AggregationTest, KindNames) {
  EXPECT_EQ(AggregationKindToString(AggregationKind::kMinimum), "min");
  EXPECT_EQ(AggregationKindToString(AggregationKind::kAverage), "avg");
  EXPECT_EQ(AggregationKindToString(AggregationKind::kMaximum), "max");
  EXPECT_EQ(AggregationKindToString(AggregationKind::kMedian), "median");
  EXPECT_EQ(AggregationKindToString(AggregationKind::kMiseryBlend),
            "misery-blend");
}

TEST(AggregationTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(
      Aggregate(std::vector<double>{5.0, 1.0, 3.0}, AggregationKind::kMedian),
      3.0);
  EXPECT_DOUBLE_EQ(Aggregate(std::vector<double>{4.0, 1.0, 3.0, 2.0},
                             AggregationKind::kMedian),
                   2.5);
}

TEST(AggregationTest, MedianRobustToOneOutlier) {
  // One vetoing member drags min to 1 but barely moves the median.
  const std::vector<double> scores{4.0, 4.2, 4.1, 1.0};
  EXPECT_DOUBLE_EQ(Aggregate(scores, AggregationKind::kMinimum), 1.0);
  EXPECT_DOUBLE_EQ(Aggregate(scores, AggregationKind::kMedian), 4.05);
}

TEST(AggregationTest, MiseryBlendInterpolates) {
  const std::vector<double> scores{1.0, 5.0};
  AggregationParams params;
  params.misery_alpha = 0.0;  // pure average
  EXPECT_DOUBLE_EQ(Aggregate(scores, AggregationKind::kMiseryBlend, params), 3.0);
  params.misery_alpha = 1.0;  // pure least misery
  EXPECT_DOUBLE_EQ(Aggregate(scores, AggregationKind::kMiseryBlend, params), 1.0);
  params.misery_alpha = 0.5;
  EXPECT_DOUBLE_EQ(Aggregate(scores, AggregationKind::kMiseryBlend, params), 2.0);
}

TEST(AggregationTest, MiseryBlendClampsAlpha) {
  const std::vector<double> scores{1.0, 5.0};
  AggregationParams params;
  params.misery_alpha = 7.0;  // clamped to 1 -> min
  EXPECT_DOUBLE_EQ(Aggregate(scores, AggregationKind::kMiseryBlend, params), 1.0);
  params.misery_alpha = -3.0;  // clamped to 0 -> avg
  EXPECT_DOUBLE_EQ(Aggregate(scores, AggregationKind::kMiseryBlend, params), 3.0);
}

TEST(AggregationTest, AllKindsBoundedByMinAndMax) {
  const std::vector<double> scores{2.0, 3.5, 4.8, 1.2};
  for (const auto kind :
       {AggregationKind::kMinimum, AggregationKind::kAverage,
        AggregationKind::kMaximum, AggregationKind::kMedian,
        AggregationKind::kMiseryBlend}) {
    const double v = Aggregate(scores, kind);
    EXPECT_GE(v, 1.2);
    EXPECT_LE(v, 4.8);
  }
}

}  // namespace
}  // namespace fairrec
