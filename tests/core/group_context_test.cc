#include "core/group_context.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tests/core/test_fixtures.h"

namespace fairrec {
namespace {

using testing_fixtures::ContextFromDense;
using testing_fixtures::kNaN;
using testing_fixtures::MembersFromDense;

TEST(GroupContextTest, RejectsEmptyMembers) {
  EXPECT_TRUE(GroupContext::Build({}, {}).status().IsInvalidArgument());
}

TEST(GroupContextTest, RejectsNonPositiveTopK) {
  GroupContextOptions options;
  options.top_k = 0;
  EXPECT_TRUE(GroupContext::Build(MembersFromDense({{3.0}}, 1), options)
                  .status()
                  .IsInvalidArgument());
}

TEST(GroupContextTest, RejectsUnsortedRelevanceLists) {
  MemberRelevance member;
  member.user = 0;
  member.relevance = {{2, 3.0}, {1, 4.0}};  // descending item ids
  EXPECT_TRUE(
      GroupContext::Build({member}, {}).status().IsInvalidArgument());
}

TEST(GroupContextTest, AverageAggregationPerItem) {
  const GroupContext ctx = ContextFromDense({{4.0, 2.0}, {2.0, 4.0}});
  ASSERT_EQ(ctx.num_candidates(), 2);
  EXPECT_DOUBLE_EQ(ctx.candidate(0).group_relevance, 3.0);
  EXPECT_DOUBLE_EQ(ctx.candidate(1).group_relevance, 3.0);
  EXPECT_EQ(ctx.group_size(), 2);
}

TEST(GroupContextTest, MinimumAggregationActsAsVeto) {
  GroupContextOptions options;
  options.aggregation = AggregationKind::kMinimum;
  const GroupContext ctx = ContextFromDense({{5.0, 4.0}, {1.0, 3.9}}, options);
  EXPECT_DOUBLE_EQ(ctx.candidate(0).group_relevance, 1.0);
  EXPECT_DOUBLE_EQ(ctx.candidate(1).group_relevance, 3.9);
}

TEST(GroupContextTest, RequireAllMembersDropsPartialItems) {
  // Item 1 undefined for member 1 -> dropped under the default policy.
  const GroupContext ctx = ContextFromDense({{4.0, 5.0}, {3.0, kNaN}});
  ASSERT_EQ(ctx.num_candidates(), 1);
  EXPECT_EQ(ctx.candidate(0).item, 0);
}

TEST(GroupContextTest, PartialItemsKeptWhenPolicyRelaxed) {
  GroupContextOptions options;
  options.require_all_members = false;
  const GroupContext ctx = ContextFromDense({{4.0, 5.0}, {3.0, kNaN}}, options);
  ASSERT_EQ(ctx.num_candidates(), 2);
  // Aggregation over the defined subset only: item 1 has just member 0.
  EXPECT_DOUBLE_EQ(ctx.candidate(1).group_relevance, 5.0);
  EXPECT_TRUE(std::isnan(ctx.candidate(1).member_relevance[1]));
}

TEST(GroupContextTest, CandidateIndexLookup) {
  const GroupContext ctx = ContextFromDense({{4.0, kNaN, 5.0}, {3.0, kNaN, 2.0}});
  EXPECT_EQ(ctx.CandidateIndexOf(0), 0);
  EXPECT_EQ(ctx.CandidateIndexOf(2), 1);
  EXPECT_EQ(ctx.CandidateIndexOf(1), -1);   // dropped (both undefined)
  EXPECT_EQ(ctx.CandidateIndexOf(99), -1);  // never existed
}

TEST(GroupContextTest, TopKSetsMatchMemberScores) {
  GroupContextOptions options;
  options.top_k = 2;
  const GroupContext ctx =
      ContextFromDense({{5.0, 4.0, 3.0, 2.0}, {2.0, 3.0, 4.0, 5.0}}, options);
  // Member 0's A_u = items {0, 1}; member 1's = items {3, 2}.
  EXPECT_TRUE(ctx.InMemberTopK(0, 0));
  EXPECT_TRUE(ctx.InMemberTopK(0, 1));
  EXPECT_FALSE(ctx.InMemberTopK(0, 2));
  EXPECT_FALSE(ctx.InMemberTopK(0, 3));
  EXPECT_TRUE(ctx.InMemberTopK(1, 3));
  EXPECT_TRUE(ctx.InMemberTopK(1, 2));
  EXPECT_FALSE(ctx.InMemberTopK(1, 0));
  ASSERT_EQ(ctx.MemberTopK(0).size(), 2u);
  EXPECT_EQ(ctx.MemberTopK(0)[0].item, 0);
  EXPECT_EQ(ctx.MemberTopK(1)[0].item, 3);
}

TEST(GroupContextTest, TopKLargerThanCandidatesCoversAll) {
  GroupContextOptions options;
  options.top_k = 100;
  const GroupContext ctx = ContextFromDense({{3.0, 4.0}, {4.0, 3.0}}, options);
  for (int32_t m = 0; m < 2; ++m) {
    for (int32_t c = 0; c < 2; ++c) EXPECT_TRUE(ctx.InMemberTopK(m, c));
  }
}

TEST(GroupContextTest, RestrictToTopMKeepsBestGroupRelevance) {
  const GroupContext ctx =
      ContextFromDense({{5.0, 1.0, 4.0, 2.0}, {5.0, 1.0, 4.0, 2.0}});
  const GroupContext top2 = ctx.RestrictToTopM(2);
  ASSERT_EQ(top2.num_candidates(), 2);
  // Best two by group relevance are items 0 (5.0) and 2 (4.0), item order
  // preserved ascending.
  EXPECT_EQ(top2.candidate(0).item, 0);
  EXPECT_EQ(top2.candidate(1).item, 2);
}

TEST(GroupContextTest, RestrictToTopMRebuildsTopKWithinUniverse) {
  GroupContextOptions options;
  options.top_k = 1;
  // Member 1's favourite (item 3) falls outside the top-2 by group relevance.
  const GroupContext ctx =
      ContextFromDense({{5.0, 4.9, 1.0, 1.2}, {4.0, 4.2, 1.0, 4.4}}, options);
  const GroupContext top2 = ctx.RestrictToTopM(2);
  ASSERT_EQ(top2.num_candidates(), 2);
  // Within {0, 1}: member 1's A_u must be recomputed to item 1 (4.2 > 4.0).
  EXPECT_TRUE(top2.InMemberTopK(1, top2.CandidateIndexOf(1)));
  EXPECT_FALSE(top2.InMemberTopK(1, top2.CandidateIndexOf(0)));
}

TEST(GroupContextTest, RestrictToTopMLargerThanPoolIsCopy) {
  const GroupContext ctx = ContextFromDense({{3.0, 4.0}});
  const GroupContext copy = ctx.RestrictToTopM(100);
  EXPECT_EQ(copy.num_candidates(), ctx.num_candidates());
}

TEST(GroupContextTest, RestrictTieBreaksByItemId) {
  const GroupContext ctx = ContextFromDense({{3.0, 3.0, 3.0}});
  const GroupContext top2 = ctx.RestrictToTopM(2);
  ASSERT_EQ(top2.num_candidates(), 2);
  EXPECT_EQ(top2.candidate(0).item, 0);
  EXPECT_EQ(top2.candidate(1).item, 1);
}

TEST(GroupContextTest, MembersRecorded) {
  const GroupContext ctx = ContextFromDense({{1.0}, {2.0}, {3.0}});
  EXPECT_EQ(ctx.members(), (Group{0, 1, 2}));
}

}  // namespace
}  // namespace fairrec
