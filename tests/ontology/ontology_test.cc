#include "ontology/ontology.h"

#include <gtest/gtest.h>

#include "ontology/snomed_generator.h"

namespace fairrec {
namespace {

Ontology Chain() {
  // root -> a -> b -> c plus root -> d
  OntologyBuilder builder;
  const ConceptId root = std::move(builder.AddRoot("root")).ValueOrDie();
  const ConceptId a = std::move(builder.AddChild(root, "a")).ValueOrDie();
  const ConceptId b = std::move(builder.AddChild(a, "b")).ValueOrDie();
  (void)std::move(builder.AddChild(b, "c")).ValueOrDie();
  (void)std::move(builder.AddChild(root, "d")).ValueOrDie();
  return std::move(builder.Build()).ValueOrDie();
}

TEST(OntologyBuilderTest, RootMustComeFirst) {
  OntologyBuilder builder;
  EXPECT_TRUE(builder.AddChild(0, "x").status().IsFailedPrecondition());
  ASSERT_TRUE(builder.AddRoot("root").ok());
  EXPECT_TRUE(builder.AddRoot("again").status().IsFailedPrecondition());
}

TEST(OntologyBuilderTest, RejectsUnknownParent) {
  OntologyBuilder builder;
  ASSERT_TRUE(builder.AddRoot("root").ok());
  EXPECT_TRUE(builder.AddChild(42, "x").status().IsInvalidArgument());
  EXPECT_TRUE(builder.AddChild(-1, "x").status().IsInvalidArgument());
}

TEST(OntologyBuilderTest, RejectsDuplicateNames) {
  OntologyBuilder builder;
  ASSERT_TRUE(builder.AddRoot("root").ok());
  ASSERT_TRUE(builder.AddChild(0, "x").ok());
  EXPECT_TRUE(builder.AddChild(0, "x").status().IsAlreadyExists());
}

TEST(OntologyBuilderTest, EmptyBuildFails) {
  OntologyBuilder builder;
  EXPECT_TRUE(builder.Build().status().IsFailedPrecondition());
}

TEST(OntologyTest, StructureAccessors) {
  const Ontology o = Chain();
  EXPECT_EQ(o.num_concepts(), 5);
  EXPECT_EQ(o.root(), 0);
  EXPECT_EQ(o.ParentOf(o.FindByName("a")), o.root());
  EXPECT_EQ(o.ParentOf(o.root()), kInvalidConceptId);
  EXPECT_EQ(o.DepthOf(o.FindByName("c")), 3);
  EXPECT_EQ(o.DepthOf(o.root()), 0);
  EXPECT_EQ(o.NameOf(o.FindByName("b")), "b");
  EXPECT_EQ(o.FindByName("missing"), kInvalidConceptId);
  ASSERT_EQ(o.ChildrenOf(o.root()).size(), 2u);
}

TEST(OntologyTest, AncestorChecks) {
  const Ontology o = Chain();
  const ConceptId c = o.FindByName("c");
  EXPECT_TRUE(o.IsAncestorOf(o.root(), c));
  EXPECT_TRUE(o.IsAncestorOf(o.FindByName("a"), c));
  EXPECT_TRUE(o.IsAncestorOf(c, c));  // inclusive
  EXPECT_FALSE(o.IsAncestorOf(c, o.root()));
  EXPECT_FALSE(o.IsAncestorOf(o.FindByName("d"), c));
}

TEST(OntologyTest, LowestCommonAncestor) {
  const Ontology o = Chain();
  const ConceptId b = o.FindByName("b");
  const ConceptId c = o.FindByName("c");
  const ConceptId d = o.FindByName("d");
  EXPECT_EQ(o.LowestCommonAncestor(c, d), o.root());
  EXPECT_EQ(o.LowestCommonAncestor(b, c), b);
  EXPECT_EQ(o.LowestCommonAncestor(c, c), c);
}

TEST(OntologyTest, PathLength) {
  const Ontology o = Chain();
  const ConceptId c = o.FindByName("c");
  const ConceptId d = o.FindByName("d");
  EXPECT_EQ(o.PathLength(c, d), 4);  // c->b->a->root->d
  EXPECT_EQ(o.PathLength(c, c), 0);
  EXPECT_EQ(o.PathLength(o.root(), c), 3);
  EXPECT_EQ(o.PathLength(c, o.root()), 3);  // symmetric
}

TEST(PaperFixtureTest, TableIPathLengthsHold) {
  // §V-C: "the shortest path between those two nodes is 5" (acute bronchitis
  // vs chest pain) and "the shortest path ... is only 2" (tracheobronchitis
  // vs acute bronchitis).
  const Ontology o = std::move(BuildPaperFixtureOntology()).ValueOrDie();
  const ConceptId acute = o.FindByName("Acute bronchitis");
  const ConceptId chest = o.FindByName("Chest pain");
  const ConceptId tracheo = o.FindByName("Tracheobronchitis");
  ASSERT_NE(acute, kInvalidConceptId);
  ASSERT_NE(chest, kInvalidConceptId);
  ASSERT_NE(tracheo, kInvalidConceptId);
  EXPECT_EQ(o.PathLength(acute, chest), 5);
  EXPECT_EQ(o.PathLength(tracheo, acute), 2);
  EXPECT_NE(o.FindByName("Broken arm"), kInvalidConceptId);
}

}  // namespace
}  // namespace fairrec
