#include "ontology/snomed_generator.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "ontology/distance_oracle.h"

namespace fairrec {
namespace {

SnomedGeneratorConfig SmallConfig() {
  SnomedGeneratorConfig config;
  config.num_clusters = 4;
  config.cluster_depth = 3;
  config.min_branch = 2;
  config.max_branch = 2;
  config.seed = 99;
  return config;
}

TEST(SnomedGeneratorTest, ValidatesConfig) {
  SnomedGeneratorConfig bad = SmallConfig();
  bad.num_clusters = 0;
  EXPECT_TRUE(GenerateSnomedLikeOntology(bad).status().IsInvalidArgument());
  bad = SmallConfig();
  bad.cluster_depth = 0;
  EXPECT_TRUE(GenerateSnomedLikeOntology(bad).status().IsInvalidArgument());
  bad = SmallConfig();
  bad.min_branch = 3;
  bad.max_branch = 2;
  EXPECT_TRUE(GenerateSnomedLikeOntology(bad).status().IsInvalidArgument());
}

TEST(SnomedGeneratorTest, StructureMatchesConfig) {
  const SyntheticOntology s =
      std::move(GenerateSnomedLikeOntology(SmallConfig())).ValueOrDie();
  ASSERT_EQ(s.cluster_roots.size(), 4u);
  ASSERT_EQ(s.cluster_concepts.size(), 4u);
  // With fixed branch 2 and depth 3: each cluster has 2 + 4 + 8 = 14 concepts.
  for (const auto& cluster : s.cluster_concepts) {
    EXPECT_EQ(cluster.size(), 14u);
  }
  // Total: root + finding axis + 4 * (1 root + 14) concepts.
  EXPECT_EQ(s.ontology.num_concepts(), 2 + 4 * 15);
  // Every cluster root hangs off the "Clinical finding" axis at depth 2.
  for (const ConceptId root : s.cluster_roots) {
    EXPECT_EQ(s.ontology.DepthOf(root), 2);
  }
}

TEST(SnomedGeneratorTest, DeterministicForSameSeed) {
  const SyntheticOntology a =
      std::move(GenerateSnomedLikeOntology(SmallConfig())).ValueOrDie();
  const SyntheticOntology b =
      std::move(GenerateSnomedLikeOntology(SmallConfig())).ValueOrDie();
  ASSERT_EQ(a.ontology.num_concepts(), b.ontology.num_concepts());
  for (ConceptId c = 0; c < a.ontology.num_concepts(); ++c) {
    EXPECT_EQ(a.ontology.NameOf(c), b.ontology.NameOf(c));
    EXPECT_EQ(a.ontology.ParentOf(c), b.ontology.ParentOf(c));
  }
}

TEST(SnomedGeneratorTest, ClusterMembersBelongToClusterSubtree) {
  const SyntheticOntology s =
      std::move(GenerateSnomedLikeOntology(SmallConfig())).ValueOrDie();
  for (size_t k = 0; k < s.cluster_roots.size(); ++k) {
    for (const ConceptId c : s.cluster_concepts[k]) {
      EXPECT_TRUE(s.ontology.IsAncestorOf(s.cluster_roots[k], c));
    }
  }
}

TEST(SnomedGeneratorTest, IntraClusterPathsShorterThanInterCluster) {
  // The property the semantic similarity relies on: same-cluster concepts
  // are closer than cross-cluster ones, on average by a wide margin.
  const SyntheticOntology s =
      std::move(GenerateSnomedLikeOntology(SmallConfig())).ValueOrDie();
  ConceptDistanceOracle oracle(&s.ontology);

  // Max intra-cluster distance: both leaves at depth cluster_depth below the
  // cluster root (depth 2), so <= 2 * 3 = 6. Min inter-cluster distance:
  // route via "Clinical finding" (depth 1), so >= 1 + 1 + 2 = hmm — compute
  // directly instead:
  int32_t max_intra = 0;
  for (const auto& cluster : s.cluster_concepts) {
    for (size_t i = 0; i < cluster.size(); i += 3) {
      for (size_t j = i; j < cluster.size(); j += 3) {
        max_intra = std::max(max_intra, oracle.Distance(cluster[i], cluster[j]));
      }
    }
  }
  int32_t min_inter = 1 << 30;
  for (size_t i = 0; i < s.cluster_concepts[0].size(); i += 3) {
    for (size_t j = 0; j < s.cluster_concepts[1].size(); j += 3) {
      min_inter = std::min(
          min_inter,
          oracle.Distance(s.cluster_concepts[0][i], s.cluster_concepts[1][j]));
    }
  }
  EXPECT_LE(max_intra, 2 * 3);
  EXPECT_GE(min_inter, 4);  // at least down 1 + up 1 around the two roots
}

TEST(SnomedGeneratorTest, ManyClustersCycleNames) {
  SnomedGeneratorConfig config = SmallConfig();
  config.num_clusters = 15;  // more than the 12 built-in names
  config.cluster_depth = 1;
  const auto s = GenerateSnomedLikeOntology(config);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->cluster_roots.size(), 15u);
}

}  // namespace
}  // namespace fairrec
