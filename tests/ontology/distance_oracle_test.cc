#include "ontology/distance_oracle.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "ontology/snomed_generator.h"

namespace fairrec {
namespace {

TEST(DistanceOracleTest, ZeroForSameConcept) {
  const Ontology o = std::move(BuildPaperFixtureOntology()).ValueOrDie();
  ConceptDistanceOracle oracle(&o);
  EXPECT_EQ(oracle.Distance(3, 3), 0);
  EXPECT_DOUBLE_EQ(oracle.Similarity(3, 3), 1.0);
}

TEST(DistanceOracleTest, SymmetricAndMatchesPathLength) {
  const Ontology o = std::move(BuildPaperFixtureOntology()).ValueOrDie();
  ConceptDistanceOracle oracle(&o);
  for (ConceptId a = 0; a < o.num_concepts(); ++a) {
    for (ConceptId b = 0; b < o.num_concepts(); ++b) {
      EXPECT_EQ(oracle.Distance(a, b), o.PathLength(a, b));
      EXPECT_EQ(oracle.Distance(a, b), oracle.Distance(b, a));
    }
  }
}

TEST(DistanceOracleTest, SimilarityDecaysWithDistance) {
  const Ontology o = std::move(BuildPaperFixtureOntology()).ValueOrDie();
  ConceptDistanceOracle oracle(&o);
  const ConceptId acute = o.FindByName("Acute bronchitis");
  const ConceptId tracheo = o.FindByName("Tracheobronchitis");
  const ConceptId chest = o.FindByName("Chest pain");
  // 2 hops vs 5 hops: 1/3 vs 1/6.
  EXPECT_DOUBLE_EQ(oracle.Similarity(acute, tracheo), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(oracle.Similarity(acute, chest), 1.0 / 6.0);
  EXPECT_GT(oracle.Similarity(acute, tracheo), oracle.Similarity(acute, chest));
}

TEST(DistanceOracleTest, CacheGrowsAndHits) {
  const Ontology o = std::move(BuildPaperFixtureOntology()).ValueOrDie();
  ConceptDistanceOracle oracle(&o);
  EXPECT_EQ(oracle.cache_size(), 0u);
  oracle.Distance(1, 5);
  EXPECT_EQ(oracle.cache_size(), 1u);
  oracle.Distance(5, 1);  // symmetric key: no new entry
  EXPECT_EQ(oracle.cache_size(), 1u);
  oracle.Distance(2, 2);  // same-concept short circuit: no entry
  EXPECT_EQ(oracle.cache_size(), 1u);
}

// Property: on randomly generated trees, the LCA closed form equals an
// explicit undirected BFS for every concept pair.
class OracleBfsEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleBfsEquivalence, LcaFormulaMatchesBfs) {
  SnomedGeneratorConfig config;
  config.num_clusters = 3;
  config.cluster_depth = 3;
  config.seed = GetParam();
  const SyntheticOntology s =
      std::move(GenerateSnomedLikeOntology(config)).ValueOrDie();
  ConceptDistanceOracle oracle(&s.ontology);

  Rng rng(GetParam() * 17 + 1);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<ConceptId>(
        rng.UniformInt(0, s.ontology.num_concepts() - 1));
    const auto b = static_cast<ConceptId>(
        rng.UniformInt(0, s.ontology.num_concepts() - 1));
    EXPECT_EQ(oracle.Distance(a, b), oracle.DistanceByBfs(a, b))
        << "a=" << a << " b=" << b << " seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, OracleBfsEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace fairrec
