#include "profiles/patient_profile.h"
#include "profiles/profile_store.h"

#include <gtest/gtest.h>

#include "ontology/snomed_generator.h"

namespace fairrec {
namespace {

Ontology Fixture() { return std::move(BuildPaperFixtureOntology()).ValueOrDie(); }

PatientProfile Patient1(const Ontology& o) {
  // Table I, Patient 1.
  PatientProfile p;
  p.user = 0;
  p.problems = {o.FindByName("Acute bronchitis")};
  p.medications = {"Ramipril 10 MG Oral Capsule"};
  p.gender = Gender::kFemale;
  p.age = 40;
  return p;
}

TEST(PatientProfileTest, RenderContainsEveryField) {
  const Ontology o = Fixture();
  const std::string doc = Patient1(o).RenderAsDocument(o);
  EXPECT_NE(doc.find("Acute bronchitis"), std::string::npos);
  EXPECT_NE(doc.find("Ramipril 10 MG Oral Capsule"), std::string::npos);
  EXPECT_NE(doc.find("female"), std::string::npos);
  EXPECT_NE(doc.find("age 40"), std::string::npos);
}

TEST(PatientProfileTest, RenderSkipsEmptyFields) {
  const Ontology o = Fixture();
  PatientProfile p;
  p.user = 1;
  const std::string doc = p.RenderAsDocument(o);
  // Only the unknown gender marker remains.
  EXPECT_EQ(doc, "unknown");
}

TEST(PatientProfileTest, RenderIgnoresInvalidConcepts) {
  const Ontology o = Fixture();
  PatientProfile p;
  p.user = 1;
  p.problems = {kInvalidConceptId, 9999};
  p.gender = Gender::kMale;
  EXPECT_EQ(p.RenderAsDocument(o), "male");
}

TEST(GenderTest, Names) {
  EXPECT_EQ(GenderToString(Gender::kFemale), "female");
  EXPECT_EQ(GenderToString(Gender::kMale), "male");
  EXPECT_EQ(GenderToString(Gender::kUnknown), "unknown");
}

TEST(ProfileStoreTest, AddAndGet) {
  const Ontology o = Fixture();
  ProfileStore store;
  ASSERT_TRUE(store.Add(Patient1(o)).ok());
  EXPECT_TRUE(store.Contains(0));
  EXPECT_FALSE(store.Contains(1));
  EXPECT_EQ(store.Get(0).age, 40);
  EXPECT_EQ(store.size(), 1);
}

TEST(ProfileStoreTest, RejectsDuplicatesAndNegativeIds) {
  const Ontology o = Fixture();
  ProfileStore store;
  ASSERT_TRUE(store.Add(Patient1(o)).ok());
  EXPECT_TRUE(store.Add(Patient1(o)).IsAlreadyExists());
  PatientProfile bad;
  bad.user = -1;
  EXPECT_TRUE(store.Add(bad).IsInvalidArgument());
}

TEST(ProfileStoreTest, SupportsSparseUserIds) {
  ProfileStore store;
  PatientProfile p;
  p.user = 7;
  ASSERT_TRUE(store.Add(p).ok());
  EXPECT_FALSE(store.Contains(3));
  EXPECT_TRUE(store.Contains(7));
  EXPECT_EQ(store.size(), 1);
  EXPECT_EQ(store.capacity_users(), 8);
  EXPECT_EQ(store.Users(), (std::vector<UserId>{7}));
}

TEST(ProfileStoreTest, RenderAllDocumentsFollowsUserOrder) {
  const Ontology o = Fixture();
  ProfileStore store;
  PatientProfile second;
  second.user = 2;
  second.gender = Gender::kMale;
  ASSERT_TRUE(store.Add(second).ok());
  ASSERT_TRUE(store.Add(Patient1(o)).ok());  // user 0
  const std::vector<std::string> docs = store.RenderAllDocuments(o);
  ASSERT_EQ(docs.size(), 2u);
  EXPECT_NE(docs[0].find("female"), std::string::npos);  // user 0 first
  EXPECT_EQ(docs[1], "male");
}

}  // namespace
}  // namespace fairrec
