#include "serve/recommendation_service.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/fairness.h"
#include "core/fairness_heuristic.h"
#include "serve/snapshot_source.h"
#include "sim/incremental_peer_graph.h"
#include "tests/serve/serve_test_util.h"

namespace fairrec {
namespace serve {
namespace {

using serve_testing::ExpectIdentical;
using serve_testing::GraphOptions;
using serve_testing::RandomDelta;
using serve_testing::ServiceOptions;
using serve_testing::SyntheticMatrix;

StaticSnapshotSource StaticSource(RatingMatrix matrix) {
  RatingSimilarityOptions similarity;
  PeerIndexOptions peers;
  peers.delta = 0.1;
  return std::move(StaticSnapshotSource::FromMatrix(std::move(matrix),
                                                    similarity, peers))
      .ValueOrDie();
}

TEST(RecommendationServiceTest, UserResponseMatchesDirectRecommender) {
  const StaticSnapshotSource source = StaticSource(SyntheticMatrix(40, 30, 7));
  const RecommendationService service(&source, ServiceOptions());

  const ServingSnapshot snapshot = source.Acquire();
  EXPECT_EQ(snapshot.generation, 1u);
  const Recommender direct =
      snapshot.MakeRecommender(ServiceOptions().recommender);

  for (const UserId u : {0, 7, 23}) {
    const UserRecResponse response =
        std::move(service.RecommendUser({u, 0})).ValueOrDie();
    EXPECT_EQ(response.generation, 1u);
    const std::vector<ScoredItem> want =
        std::move(direct.RecommendForUser(u)).ValueOrDie();
    EXPECT_EQ(response.items, want);
  }
}

TEST(RecommendationServiceTest, TopKOverrideTruncatesTheList) {
  const StaticSnapshotSource source = StaticSource(SyntheticMatrix(40, 30, 7));
  const RecommendationService service(&source, ServiceOptions());

  const UserRecResponse full =
      std::move(service.RecommendUser({3, 0})).ValueOrDie();
  const UserRecResponse two =
      std::move(service.RecommendUser({3, 2})).ValueOrDie();
  ASSERT_LE(two.items.size(), 2u);
  for (size_t k = 0; k < two.items.size(); ++k) {
    EXPECT_EQ(two.items[k], full.items[k]);
  }
}

TEST(RecommendationServiceTest, GroupResponseMatchesDirectPipeline) {
  const StaticSnapshotSource source = StaticSource(SyntheticMatrix(40, 30, 7));
  const RecommendationService service(&source, ServiceOptions());
  const Group group{1, 5, 9};

  GroupRecRequest request;
  request.members = group;
  request.z = 4;
  request.selector = "algorithm1";
  const GroupRecResponse response =
      std::move(service.RecommendGroup(request)).ValueOrDie();
  EXPECT_EQ(response.selector, "algorithm1");

  // Reference: the same pipeline assembled by hand from the same snapshot.
  const ServingSnapshot snapshot = source.Acquire();
  const GroupRecommender group_rec = snapshot.MakeGroupRecommender(
      ServiceOptions().recommender, ServiceOptions().context);
  const FairnessHeuristic heuristic;
  const Selection want =
      std::move(group_rec.RecommendFair(group, 4, heuristic)).ValueOrDie();

  ASSERT_EQ(response.items.size(), want.items.size());
  for (size_t k = 0; k < want.items.size(); ++k) {
    EXPECT_EQ(response.items[k].item, want.items[k]);
  }
  EXPECT_EQ(response.score.fairness, want.score.fairness);
  EXPECT_EQ(response.score.relevance_sum, want.score.relevance_sum);
  EXPECT_EQ(response.score.value, want.score.value);

  // Member satisfaction decomposes Def. 3: the satisfied fraction is the
  // fairness factor.
  ASSERT_EQ(response.members.size(), group.size());
  int32_t satisfied = 0;
  for (size_t m = 0; m < group.size(); ++m) {
    EXPECT_EQ(response.members[m].user, group[m]);
    if (response.members[m].satisfied) ++satisfied;
  }
  EXPECT_DOUBLE_EQ(static_cast<double>(satisfied) /
                       static_cast<double>(group.size()),
                   response.score.fairness);
}

TEST(RecommendationServiceTest, AllRegisteredSelectorsServeTheSameRequest) {
  const StaticSnapshotSource source = StaticSource(SyntheticMatrix(40, 30, 7));
  const RecommendationService service(&source, ServiceOptions());

  const std::vector<std::string> names = service.selector_names();
  ASSERT_GE(names.size(), 7u);
  for (const std::string& name : names) {
    GroupRecRequest request;
    request.members = {2, 8, 14};
    request.z = 3;
    request.selector = name;
    const auto response = service.RecommendGroup(request);
    ASSERT_TRUE(response.ok()) << name << ": " << response.status().ToString();
    EXPECT_EQ(response->items.size(), 3u) << name;
    EXPECT_EQ(response->selector, name);
  }
}

TEST(RecommendationServiceTest, AliasesResolveToCanonicalSelectors) {
  const StaticSnapshotSource source = StaticSource(SyntheticMatrix(40, 30, 7));
  const RecommendationService service(&source, ServiceOptions());

  GroupRecRequest request;
  request.members = {2, 8, 14};
  request.z = 3;
  request.selector = "localsearch";  // legacy CLI spelling
  const GroupRecResponse response =
      std::move(service.RecommendGroup(request)).ValueOrDie();
  // The echoed name is canonical, not the alias the request used.
  EXPECT_EQ(response.selector, "local-search");
}

TEST(RecommendationServiceTest, UnknownSelectorIsInvalidArgument) {
  const StaticSnapshotSource source = StaticSource(SyntheticMatrix(40, 30, 7));
  const RecommendationService service(&source, ServiceOptions());

  GroupRecRequest request;
  request.members = {2, 8, 14};
  request.z = 3;
  request.selector = "no-such-selector";
  EXPECT_TRUE(
      service.RecommendGroup(request).status().IsInvalidArgument());
  EXPECT_TRUE(service.selector("no-such-selector").status().IsInvalidArgument());
}

TEST(RecommendationServiceTest, LiveSourceAdvancesGenerationPerDelta) {
  const RatingMatrix matrix = SyntheticMatrix(40, 30, 11);
  LivePeerGraph live(std::move(
      std::move(IncrementalPeerGraph::Build(matrix, GraphOptions())).ValueOrDie()));
  const RecommendationService service(&live, ServiceOptions());

  EXPECT_EQ(live.generation(), 1u);
  const UserRecResponse before =
      std::move(service.RecommendUser({4, 0})).ValueOrDie();
  EXPECT_EQ(before.generation, 1u);

  ASSERT_TRUE(live.ApplyDelta(RandomDelta(matrix, 25, 101)).ok());
  EXPECT_EQ(live.generation(), 2u);
  const UserRecResponse after =
      std::move(service.RecommendUser({4, 0})).ValueOrDie();
  EXPECT_EQ(after.generation, 2u);
}

TEST(RecommendationServiceTest, RetainedSnapshotIsImmuneToDeltas) {
  const RatingMatrix matrix = SyntheticMatrix(40, 30, 13);
  LivePeerGraph live(std::move(
      std::move(IncrementalPeerGraph::Build(matrix, GraphOptions())).ValueOrDie()));
  const RecommendationService service(&live, ServiceOptions());
  RecommendationService::Scratch scratch;

  const ServingSnapshot retained = live.Acquire();
  GroupRecRequest request;
  request.members = {0, 3, 6, 9};
  request.z = 3;
  const GroupRecResponse before =
      std::move(service.RecommendGroupOn(retained, request, scratch))
          .ValueOrDie();

  for (uint64_t round = 0; round < 3; ++round) {
    ASSERT_TRUE(live.ApplyDelta(RandomDelta(matrix, 30, 200 + round)).ok());
  }
  EXPECT_EQ(live.generation(), 4u);

  // The retained generation answers bit-identically after three published
  // deltas: its matrix and index were never touched in place.
  const GroupRecResponse after =
      std::move(service.RecommendGroupOn(retained, request, scratch))
          .ValueOrDie();
  ExpectIdentical(before, after);
  EXPECT_EQ(after.generation, 1u);
}

TEST(RecommendationServiceTest, ScratchAndScratchlessPathsAgree) {
  const StaticSnapshotSource source = StaticSource(SyntheticMatrix(40, 30, 7));
  const RecommendationService service(&source, ServiceOptions());
  RecommendationService::Scratch scratch;

  GroupRecRequest request;
  request.members = {4, 11, 17};
  request.z = 3;
  const GroupRecResponse with_scratch =
      std::move(service.RecommendGroup(request, scratch)).ValueOrDie();
  const GroupRecResponse without =
      std::move(service.RecommendGroup(request)).ValueOrDie();
  ExpectIdentical(with_scratch, without);

  // Back-to-back reuse of the same scratch must not leak state between
  // requests.
  const GroupRecResponse again =
      std::move(service.RecommendGroup(request, scratch)).ValueOrDie();
  ExpectIdentical(with_scratch, again);
}

}  // namespace
}  // namespace serve
}  // namespace fairrec
