#ifndef FAIRREC_TESTS_SERVE_SERVE_TEST_UTIL_H_
#define FAIRREC_TESTS_SERVE_SERVE_TEST_UTIL_H_

#include <utility>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ratings/rating_delta.h"
#include "ratings/rating_matrix.h"
#include "serve/recommendation_service.h"
#include "sim/incremental_peer_graph.h"

namespace fairrec {
namespace serve_testing {

/// A random corpus on the integer 1..5 scale (integer so the incremental
/// graph's byte-parity contract holds exactly under deltas).
inline RatingMatrix SyntheticMatrix(int32_t num_users, int32_t num_items,
                                    uint64_t seed, double density = 0.4) {
  RatingMatrixBuilder builder;
  Rng rng(seed);
  for (UserId u = 0; u < num_users; ++u) {
    for (ItemId i = 0; i < num_items; ++i) {
      if (rng.NextDouble() >= density) continue;
      EXPECT_TRUE(
          builder.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5))).ok());
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

/// A batch of random upserts over the existing population.
inline RatingDelta RandomDelta(const RatingMatrix& matrix, int32_t size,
                               uint64_t seed) {
  RatingDelta delta;
  Rng rng(seed);
  for (int32_t n = 0; n < size; ++n) {
    const UserId u =
        static_cast<UserId>(rng.UniformInt(0, matrix.num_users() - 1));
    const ItemId i =
        static_cast<ItemId>(rng.UniformInt(0, matrix.num_items() - 1));
    EXPECT_TRUE(delta.Add(u, i, static_cast<Rating>(rng.UniformInt(1, 5))).ok());
  }
  return delta;
}

inline IncrementalPeerGraphOptions GraphOptions() {
  IncrementalPeerGraphOptions options;
  options.peers.delta = 0.1;
  // Deterministic planning for the parity assertions: never calibrate from
  // wall time, always patch.
  options.calibrate_planner = false;
  options.rebuild_fallback_ratio = 0.0;
  return options;
}

inline serve::RecommendationServiceOptions ServiceOptions() {
  serve::RecommendationServiceOptions options;
  options.recommender.peers.delta = 0.1;
  options.recommender.top_k = 5;
  options.context.top_k = 5;
  return options;
}

/// Bit-identical response comparison: same generation, same items, exactly
/// the same doubles.
inline void ExpectIdentical(const serve::UserRecResponse& a,
                            const serve::UserRecResponse& b) {
  EXPECT_EQ(a.generation, b.generation);
  ASSERT_EQ(a.items.size(), b.items.size());
  for (size_t k = 0; k < a.items.size(); ++k) {
    EXPECT_EQ(a.items[k], b.items[k]) << "item " << k;
  }
}

inline void ExpectIdentical(const serve::GroupRecResponse& a,
                            const serve::GroupRecResponse& b) {
  EXPECT_EQ(a.generation, b.generation);
  ASSERT_EQ(a.items.size(), b.items.size());
  for (size_t k = 0; k < a.items.size(); ++k) {
    EXPECT_EQ(a.items[k], b.items[k]) << "item " << k;
  }
  EXPECT_EQ(a.score.fairness, b.score.fairness);
  EXPECT_EQ(a.score.relevance_sum, b.score.relevance_sum);
  EXPECT_EQ(a.score.value, b.score.value);
  EXPECT_EQ(a.selector, b.selector);
  ASSERT_EQ(a.members.size(), b.members.size());
  for (size_t m = 0; m < a.members.size(); ++m) {
    EXPECT_EQ(a.members[m].user, b.members[m].user);
    EXPECT_EQ(a.members[m].satisfied, b.members[m].satisfied);
    EXPECT_EQ(a.members[m].relevance_sum, b.members[m].relevance_sum);
    EXPECT_EQ(a.members[m].satisfaction, b.members[m].satisfaction);
  }
}

}  // namespace serve_testing
}  // namespace fairrec

#endif  // FAIRREC_TESTS_SERVE_SERVE_TEST_UTIL_H_
