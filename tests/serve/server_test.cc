#include "serve/server.h"

#include <atomic>
#include <future>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "serve/recommendation_service.h"
#include "serve/snapshot_source.h"
#include "tests/serve/serve_test_util.h"

namespace fairrec {
namespace serve {
namespace {

using serve_testing::ServiceOptions;
using serve_testing::SyntheticMatrix;

class ServingServerTest : public ::testing::Test {
 protected:
  ServingServerTest()
      : source_(std::move(StaticSnapshotSource::FromMatrix(
                              SyntheticMatrix(30, 20, 3), {}, PeerOptions()))
                    .ValueOrDie()),
        service_(&source_, ServiceOptions()) {}

  static PeerIndexOptions PeerOptions() {
    PeerIndexOptions peers;
    peers.delta = 0.1;
    return peers;
  }

  StaticSnapshotSource source_;
  RecommendationService service_;
};

TEST_F(ServingServerTest, CallPathsMatchDirectServiceCalls) {
  ServingServer server(&service_, {});

  const UserRecResponse user =
      std::move(server.CallUser({5, 0})).ValueOrDie();
  const UserRecResponse direct_user =
      std::move(service_.RecommendUser({5, 0})).ValueOrDie();
  EXPECT_EQ(user.items, direct_user.items);

  GroupRecRequest request;
  request.members = {1, 4, 7};
  request.z = 3;
  const GroupRecResponse group =
      std::move(server.CallGroup(request)).ValueOrDie();
  const GroupRecResponse direct_group =
      std::move(service_.RecommendGroup(request)).ValueOrDie();
  ASSERT_EQ(group.items.size(), direct_group.items.size());
  EXPECT_EQ(group.score.value, direct_group.score.value);
}

TEST_F(ServingServerTest, ServiceErrorsReachTheCallback) {
  ServingServer server(&service_, {});
  const auto result = server.CallUser({9999, 0});
  EXPECT_TRUE(result.status().IsNotFound());

  const ServingServerStats stats = server.stats();
  EXPECT_EQ(stats.completed_error, 1u);
}

TEST_F(ServingServerTest, ConcurrentSubmissionsAllComplete) {
  ServingServerOptions options;
  options.num_workers = 3;
  options.max_queue = 1024;
  ServingServer server(&service_, options);

  constexpr int kRequests = 60;
  std::atomic<int> ok{0};
  std::vector<std::future<void>> done;
  done.reserve(kRequests);
  for (int n = 0; n < kRequests; ++n) {
    auto latch = std::make_shared<std::promise<void>>();
    done.push_back(latch->get_future());
    const UserId u = static_cast<UserId>(n % 30);
    ASSERT_TRUE(server
                    .SubmitUser({u, 0},
                                [&ok, latch](Result<UserRecResponse> r) {
                                  if (r.ok()) ok.fetch_add(1);
                                  latch->set_value();
                                })
                    .ok());
  }
  for (auto& f : done) f.get();
  EXPECT_EQ(ok.load(), kRequests);

  const ServingServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(stats.completed_ok, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(stats.shed, 0u);
}

TEST_F(ServingServerTest, FullQueueShedsWithResourceExhausted) {
  ServingServerOptions options;
  options.num_workers = 1;
  options.max_queue = 1;
  ServingServer server(&service_, options);

  // Block the single worker inside the first request's callback, so the
  // admission decisions below are deterministic: slot 2 queues, slot 3 sheds.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::promise<void> entered;
  ASSERT_TRUE(server
                  .SubmitUser({0, 0},
                              [&entered, gate](Result<UserRecResponse>) {
                                entered.set_value();
                                gate.wait();
                              })
                  .ok());
  entered.get_future().get();

  std::promise<void> queued_done;
  ASSERT_TRUE(server
                  .SubmitUser({1, 0},
                              [&queued_done](Result<UserRecResponse>) {
                                queued_done.set_value();
                              })
                  .ok());

  const Status shed = server.SubmitUser({2, 0}, [](Result<UserRecResponse>) {});
  EXPECT_TRUE(shed.IsResourceExhausted()) << shed.ToString();

  release.set_value();
  queued_done.get_future().get();

  const ServingServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.queue_peak, 1u);
}

TEST_F(ServingServerTest, ShutdownDrainsAcceptedRequestsThenRefuses) {
  ServingServerOptions options;
  options.num_workers = 2;
  options.max_queue = 256;
  auto server = std::make_unique<ServingServer>(&service_, options);

  constexpr int kRequests = 20;
  std::atomic<int> completed{0};
  for (int n = 0; n < kRequests; ++n) {
    ASSERT_TRUE(server
                    ->SubmitUser({static_cast<UserId>(n % 30), 0},
                                 [&completed](Result<UserRecResponse>) {
                                   completed.fetch_add(1);
                                 })
                    .ok());
  }
  server->Shutdown();
  // Graceful: every accepted request ran its callback before Shutdown
  // returned.
  EXPECT_EQ(completed.load(), kRequests);

  const Status refused =
      server->SubmitUser({0, 0}, [](Result<UserRecResponse>) {});
  EXPECT_TRUE(refused.IsFailedPrecondition()) << refused.ToString();
}

}  // namespace
}  // namespace serve
}  // namespace fairrec
