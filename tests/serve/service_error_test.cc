#include <utility>

#include <gtest/gtest.h>

#include "serve/recommendation_service.h"
#include "serve/server.h"
#include "serve/snapshot_source.h"
#include "tests/serve/serve_test_util.h"

namespace fairrec {
namespace serve {
namespace {

using serve_testing::ServiceOptions;
using serve_testing::SyntheticMatrix;

// The query path's error taxonomy: each caller mistake has one distinct,
// documented code (see serve/recommendation_service.h), so a transport can
// map failures without parsing messages.
class ServiceErrorTest : public ::testing::Test {
 protected:
  ServiceErrorTest()
      : source_(std::move(StaticSnapshotSource::FromMatrix(
                              SyntheticMatrix(30, 20, 3), {}, PeerOptions()))
                    .ValueOrDie()),
        service_(&source_, ServiceOptions()) {}

  static PeerIndexOptions PeerOptions() {
    PeerIndexOptions peers;
    peers.delta = 0.1;
    return peers;
  }

  StaticSnapshotSource source_;
  RecommendationService service_;
};

TEST_F(ServiceErrorTest, UnknownUserIsNotFound) {
  EXPECT_TRUE(service_.RecommendUser({999, 0}).status().IsNotFound());
  EXPECT_TRUE(service_.RecommendUser({-1, 0}).status().IsNotFound());
}

TEST_F(ServiceErrorTest, UnknownGroupMemberIsNotFound) {
  GroupRecRequest request;
  request.members = {1, 2, 999};
  request.z = 2;
  EXPECT_TRUE(service_.RecommendGroup(request).status().IsNotFound());
}

TEST_F(ServiceErrorTest, EmptyGroupIsInvalidArgument) {
  GroupRecRequest request;
  request.z = 2;
  EXPECT_TRUE(service_.RecommendGroup(request).status().IsInvalidArgument());
}

TEST_F(ServiceErrorTest, DuplicateMemberIsInvalidArgument) {
  GroupRecRequest request;
  request.members = {1, 2, 1};
  request.z = 2;
  EXPECT_TRUE(service_.RecommendGroup(request).status().IsInvalidArgument());
}

TEST_F(ServiceErrorTest, NonPositiveZIsInvalidArgument) {
  GroupRecRequest request;
  request.members = {1, 2};
  request.z = 0;
  EXPECT_TRUE(service_.RecommendGroup(request).status().IsInvalidArgument());
  request.z = -3;
  EXPECT_TRUE(service_.RecommendGroup(request).status().IsInvalidArgument());
}

TEST_F(ServiceErrorTest, NegativeTopKOverrideIsInvalidArgument) {
  EXPECT_TRUE(service_.RecommendUser({1, -2}).status().IsInvalidArgument());
}

TEST_F(ServiceErrorTest, OversizedZIsOutOfRange) {
  GroupRecRequest request;
  request.members = {1, 2, 3};
  // More than the item universe, so certainly more than the candidate set.
  request.z = 10000;
  const Status status = service_.RecommendGroup(request).status();
  EXPECT_TRUE(status.IsOutOfRange()) << status.ToString();
}

TEST_F(ServiceErrorTest, ValidRequestRightAtTheCandidateBoundSucceeds) {
  GroupRecRequest request;
  request.members = {1, 2, 3};
  request.z = 1;
  // Find the exact candidate count, then ask for exactly that many.
  RecommendationService::Scratch scratch;
  const ServingSnapshot snapshot = source_.Acquire();
  const auto probe = service_.RecommendGroupOn(snapshot, request, scratch);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  // Grow z until OutOfRange; the last OK z is the candidate count.
  int32_t z = 1;
  while (true) {
    request.z = z + 1;
    const auto r = service_.RecommendGroupOn(snapshot, request, scratch);
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsOutOfRange()) << r.status().ToString();
      break;
    }
    ++z;
    ASSERT_LT(z, 10000);
  }
  request.z = z;
  EXPECT_TRUE(service_.RecommendGroupOn(snapshot, request, scratch).ok());
}

TEST_F(ServiceErrorTest, ShedRequestIsResourceExhaustedAndRetryable) {
  // Overload shedding is the server's verdict, not the service's — but it
  // completes the taxonomy, so it is asserted here alongside the others.
  const Status shed = Status::ResourceExhausted("queue full");
  EXPECT_TRUE(shed.IsResourceExhausted());
  EXPECT_FALSE(shed.IsInvalidArgument());
}

}  // namespace
}  // namespace serve
}  // namespace fairrec
