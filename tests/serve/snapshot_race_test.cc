#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "serve/recommendation_service.h"
#include "serve/server.h"
#include "serve/snapshot_source.h"
#include "sim/incremental_peer_graph.h"
#include "tests/serve/serve_test_util.h"

namespace fairrec {
namespace serve {
namespace {

using serve_testing::ExpectIdentical;
using serve_testing::GraphOptions;
using serve_testing::RandomDelta;
using serve_testing::ServiceOptions;
using serve_testing::SyntheticMatrix;

/// One retained observation of the concurrent phase: the exact snapshot the
/// query ran on, the request, and the response produced while deltas were
/// being published underneath.
struct GroupSample {
  ServingSnapshot snapshot;
  GroupRecRequest request;
  GroupRecResponse response;
};

struct UserSample {
  ServingSnapshot snapshot;
  UserRecRequest request;
  UserRecResponse response;
};

/// The snapshot-stability soak of the serving tentpole: reader threads
/// hammer the service while the writer publishes delta generations, then
/// every retained (snapshot, request, response) triple is replayed after
/// quiesce on its retained snapshot and must come back bit-identical. A
/// reader that ever observed a torn generation — a matrix from one
/// publication paired with an index from another, or an artifact mutated
/// in place mid-query — cannot replay identically, because the retained
/// snapshot only holds one consistent pair.
TEST(SnapshotRaceTest, ConcurrentQueriesReplayBitIdenticallyAfterQuiesce) {
  const RatingMatrix matrix = SyntheticMatrix(50, 30, 29, 0.45);
  LivePeerGraph live(
      std::move(IncrementalPeerGraph::Build(matrix, GraphOptions()))
          .ValueOrDie());
  const RecommendationService service(&live, ServiceOptions());

  constexpr int kReaders = 4;
  constexpr int kDeltas = 10;
  constexpr int kDeltaSize = 40;

  std::atomic<bool> done{false};
  std::vector<std::vector<GroupSample>> group_samples(kReaders);
  std::vector<std::vector<UserSample>> user_samples(kReaders);

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(1000 + static_cast<uint64_t>(r));
      RecommendationService::Scratch scratch;
      while (!done.load(std::memory_order_relaxed)) {
        const ServingSnapshot snapshot = live.Acquire();
        if (rng.NextBool(0.35)) {
          UserRecRequest request;
          request.user = static_cast<UserId>(rng.UniformInt(0, 49));
          auto response = service.RecommendUserOn(snapshot, request, scratch);
          ASSERT_TRUE(response.ok()) << response.status().ToString();
          // The response must carry the generation asked, not a newer one.
          ASSERT_EQ(response->generation, snapshot.generation);
          user_samples[static_cast<size_t>(r)].push_back(
              {snapshot, request, std::move(response).ValueOrDie()});
        } else {
          GroupRecRequest request;
          const int32_t size = static_cast<int32_t>(rng.UniformInt(2, 4));
          const std::vector<int32_t> picks =
              rng.SampleWithoutReplacement(50, size);
          for (const int32_t u : picks) {
            request.members.push_back(static_cast<UserId>(u));
          }
          request.z = 3;
          request.selector = "algorithm1";
          auto response = service.RecommendGroupOn(snapshot, request, scratch);
          // OutOfRange is legitimate (a tiny candidate set for this random
          // group); anything else is a bug.
          if (!response.ok()) {
            ASSERT_TRUE(response.status().IsOutOfRange())
                << response.status().ToString();
            continue;
          }
          ASSERT_EQ(response->generation, snapshot.generation);
          group_samples[static_cast<size_t>(r)].push_back(
              {snapshot, request, std::move(response).ValueOrDie()});
        }
      }
    });
  }

  // The writer: publish kDeltas generations while the readers run.
  uint64_t expected_generation = 1;
  for (int d = 0; d < kDeltas; ++d) {
    const auto stats =
        live.ApplyDelta(RandomDelta(matrix, kDeltaSize, 500 + d));
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ++expected_generation;
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  ASSERT_EQ(live.generation(), expected_generation);

  // Quiesced replay: every sample re-asked on its retained snapshot must be
  // bit-identical to what the concurrent run produced.
  RecommendationService::Scratch scratch;
  size_t replayed = 0;
  for (const auto& per_reader : user_samples) {
    for (const UserSample& sample : per_reader) {
      const auto replay =
          service.RecommendUserOn(sample.snapshot, sample.request, scratch);
      ASSERT_TRUE(replay.ok()) << replay.status().ToString();
      ExpectIdentical(*replay, sample.response);
      ++replayed;
    }
  }
  for (const auto& per_reader : group_samples) {
    for (const GroupSample& sample : per_reader) {
      const auto replay =
          service.RecommendGroupOn(sample.snapshot, sample.request, scratch);
      ASSERT_TRUE(replay.ok()) << replay.status().ToString();
      ExpectIdentical(*replay, sample.response);
      ++replayed;
    }
  }
  // The soak is vacuous if the readers never got a query in.
  EXPECT_GT(replayed, 0u);
}

/// Same shape through the ServingServer: the full request loop (bounded
/// queue, worker scratches, callbacks) under concurrent deltas. Responses
/// only need to name *some* published generation and be internally
/// consistent; the bit-identical contract is covered above where the
/// snapshot is retained.
TEST(SnapshotRaceTest, ServerTrafficUnderDeltasSeesOnlyPublishedGenerations) {
  const RatingMatrix matrix = SyntheticMatrix(50, 30, 31, 0.45);
  LivePeerGraph live(
      std::move(IncrementalPeerGraph::Build(matrix, GraphOptions()))
          .ValueOrDie());
  const RecommendationService service(&live, ServiceOptions());
  ServingServerOptions server_options;
  server_options.num_workers = 3;
  server_options.max_queue = 128;
  ServingServer server(&service, server_options);

  constexpr int kDeltas = 6;
  std::atomic<uint64_t> max_seen{0};
  std::atomic<int> completed{0};
  std::atomic<int> submitted{0};

  Rng rng(77);
  for (int d = 0; d < kDeltas; ++d) {
    for (int n = 0; n < 25; ++n) {
      UserRecRequest request;
      request.user = static_cast<UserId>(rng.UniformInt(0, 49));
      const Status admitted = server.SubmitUser(
          request, [&max_seen, &completed](Result<UserRecResponse> r) {
            ASSERT_TRUE(r.ok()) << r.status().ToString();
            uint64_t seen = max_seen.load();
            while (r->generation > seen &&
                   !max_seen.compare_exchange_weak(seen, r->generation)) {
            }
            completed.fetch_add(1);
          });
      if (admitted.ok()) {
        submitted.fetch_add(1);
      } else {
        ASSERT_TRUE(admitted.IsResourceExhausted()) << admitted.ToString();
      }
    }
    ASSERT_TRUE(live.ApplyDelta(RandomDelta(matrix, 30, 900 + d)).ok());
  }
  server.Shutdown();

  EXPECT_EQ(completed.load(), submitted.load());
  // No response ever named a generation that was not published.
  EXPECT_LE(max_seen.load(), live.generation());
  EXPECT_GE(max_seen.load(), 1u);
}

}  // namespace
}  // namespace serve
}  // namespace fairrec
