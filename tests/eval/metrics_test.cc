#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "eval/timing.h"
#include "tests/core/test_fixtures.h"

namespace fairrec {
namespace {

using testing_fixtures::ContextFromDense;
using testing_fixtures::kNaN;

GroupContext TwoMembers() {
  // Member 0: best item 0 (5.0); member 1: best item 2 (4.0).
  return ContextFromDense({{5.0, 2.5, 1.0}, {2.0, 3.0, 4.0}});
}

TEST(MetricsTest, SatisfactionOfBestItemIsOne) {
  const GroupContext ctx = TwoMembers();
  EXPECT_DOUBLE_EQ(MemberSatisfaction(ctx, 0, {0}), 1.0);
  EXPECT_DOUBLE_EQ(MemberSatisfaction(ctx, 1, {2}), 1.0);
}

TEST(MetricsTest, SatisfactionIsRelativeToBestPossible) {
  const GroupContext ctx = TwoMembers();
  // D = {1}: member 0 gets 2.5 of a possible 5.0.
  EXPECT_DOUBLE_EQ(MemberSatisfaction(ctx, 0, {1}), 0.5);
  // Member 1 gets 3.0 of a possible 4.0.
  EXPECT_DOUBLE_EQ(MemberSatisfaction(ctx, 1, {1}), 0.75);
}

TEST(MetricsTest, EmptySelectionScoresZero) {
  const GroupContext ctx = TwoMembers();
  EXPECT_DOUBLE_EQ(MemberSatisfaction(ctx, 0, {}), 0.0);
}

TEST(MetricsTest, GroupStats) {
  const GroupContext ctx = TwoMembers();
  const SatisfactionStats stats = GroupSatisfaction(ctx, {1});
  EXPECT_EQ(stats.members_counted, 2);
  EXPECT_DOUBLE_EQ(stats.min, 0.5);
  EXPECT_DOUBLE_EQ(stats.max, 0.75);
  EXPECT_DOUBLE_EQ(stats.mean, 0.625);
}

TEST(MetricsTest, ByItemsOverloadIgnoresUnknownIds) {
  const GroupContext ctx = TwoMembers();
  const SatisfactionStats stats = GroupSatisfactionByItems(ctx, {0, 2, 999});
  EXPECT_DOUBLE_EQ(stats.min, 1.0);  // both members got their favourite
}

TEST(MetricsTest, UndefinedMembersAreSkipped) {
  GroupContextOptions options;
  options.require_all_members = false;
  // Member 1 has no defined relevance anywhere.
  const GroupContext ctx =
      ContextFromDense({{5.0, 2.0}, {kNaN, kNaN}}, options);
  const SatisfactionStats stats = GroupSatisfaction(ctx, {0});
  EXPECT_EQ(stats.members_counted, 1);
  EXPECT_DOUBLE_EQ(MemberSatisfaction(ctx, 1, {0}), -1.0);
}

TEST(TimingTest, MeasuresAndAggregates) {
  int calls = 0;
  const TimingResult t = MeasureMs([&calls] { ++calls; }, 5);
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(t.repetitions, 5);
  EXPECT_GE(t.min_ms, 0.0);
  EXPECT_LE(t.min_ms, t.mean_ms);
  EXPECT_LE(t.mean_ms, t.max_ms);
}

TEST(TimingTest, ClampsRepetitionsToOne) {
  int calls = 0;
  const TimingResult t = MeasureMs([&calls] { ++calls; }, 0);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(t.repetitions, 1);
}

}  // namespace
}  // namespace fairrec
