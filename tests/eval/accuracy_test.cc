#include "eval/accuracy.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fairrec {
namespace {

const std::vector<RatingTriple> kTest{{0, 0, 4.0}, {0, 1, 2.0}, {1, 0, 5.0}};

TEST(AccuracyTest, PerfectPredictorScoresZeroError) {
  const AccuracyStats stats = EvaluatePredictor(
      kTest, [](UserId u, ItemId i) -> std::optional<double> {
        if (u == 0 && i == 0) return 4.0;
        if (u == 0 && i == 1) return 2.0;
        return 5.0;
      });
  EXPECT_DOUBLE_EQ(stats.rmse, 0.0);
  EXPECT_DOUBLE_EQ(stats.mae, 0.0);
  EXPECT_EQ(stats.predicted, 3);
  EXPECT_DOUBLE_EQ(stats.coverage, 1.0);
}

TEST(AccuracyTest, HandComputedErrors) {
  // Constant 3.0: errors are 1, 1, 2.
  const AccuracyStats stats = EvaluatePredictor(
      kTest, [](UserId, ItemId) -> std::optional<double> { return 3.0; });
  EXPECT_DOUBLE_EQ(stats.mae, (1.0 + 1.0 + 2.0) / 3.0);
  EXPECT_DOUBLE_EQ(stats.rmse, std::sqrt((1.0 + 1.0 + 4.0) / 3.0));
}

TEST(AccuracyTest, AbstentionsReduceCoverageNotError) {
  const AccuracyStats stats = EvaluatePredictor(
      kTest, [](UserId u, ItemId) -> std::optional<double> {
        if (u == 1) return std::nullopt;
        return 3.0;
      });
  EXPECT_EQ(stats.predicted, 2);
  EXPECT_NEAR(stats.coverage, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.mae, 1.0);  // errors 1 and 1 on the two covered
}

TEST(AccuracyTest, EmptyTestSet) {
  const AccuracyStats stats = EvaluatePredictor(
      {}, [](UserId, ItemId) -> std::optional<double> { return 3.0; });
  EXPECT_EQ(stats.predicted, 0);
  EXPECT_DOUBLE_EQ(stats.coverage, 0.0);
  EXPECT_DOUBLE_EQ(stats.rmse, 0.0);
}

TEST(AccuracyTest, TotalAbstention) {
  const AccuracyStats stats = EvaluatePredictor(
      kTest, [](UserId, ItemId) -> std::optional<double> { return std::nullopt; });
  EXPECT_EQ(stats.predicted, 0);
  EXPECT_DOUBLE_EQ(stats.coverage, 0.0);
}

}  // namespace
}  // namespace fairrec
