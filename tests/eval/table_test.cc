#include "eval/table.h"

#include <gtest/gtest.h>

namespace fairrec {
namespace {

TEST(AsciiTableTest, RendersAlignedColumns) {
  AsciiTable table({"m", "time"});
  table.AddRow({"10", "37"});
  table.AddRow({"300", "12345"});
  const std::string out = table.ToString();
  EXPECT_EQ(out,
            "| m   | time  |\n"
            "|-----|-------|\n"
            "| 10  | 37    |\n"
            "| 300 | 12345 |\n");
}

TEST(AsciiTableTest, ShortRowsPadded) {
  AsciiTable table({"a", "b", "c"});
  table.AddRow({"1"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| 1 |   |   |"), std::string::npos);
}

TEST(AsciiTableTest, LongRowsTruncated) {
  AsciiTable table({"a"});
  table.AddRow({"1", "overflow"});
  const std::string out = table.ToString();
  EXPECT_EQ(out.find("overflow"), std::string::npos);
}

TEST(AsciiTableTest, HeaderWiderThanCells) {
  AsciiTable table({"very_long_header"});
  table.AddRow({"x"});
  EXPECT_NE(table.ToString().find("| very_long_header |"), std::string::npos);
}

TEST(AsciiTableTest, CountsRows) {
  AsciiTable table({"a"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"1"});
  table.AddRow({"2"});
  EXPECT_EQ(table.num_rows(), 2u);
}

}  // namespace
}  // namespace fairrec
