#include "eval/table2_experiment.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"

namespace fairrec {
namespace {

Table2Config SmokeConfig() {
  // Miniature sweep so the whole experiment path runs in well under a
  // second: the real paper-scale sweep lives in the bench binary.
  Table2Config config;
  config.m_values = {8, 12};
  config.z_values = {2, 4, 6};
  config.group_size = 2;
  config.scenario.num_patients = 80;
  config.scenario.num_documents = 80;
  config.scenario.num_clusters = 4;
  config.scenario.rating_density = 0.2;
  config.scenario.seed = 4321;
  config.top_k = 5;
  config.heuristic_repetitions = 1;
  return config;
}

TEST(Table2ExperimentTest, ProducesAllValidCells) {
  const Table2Result result =
      std::move(RunTable2Experiment(SmokeConfig())).ValueOrDie();
  // Cells with z < m: (8: 2,4,6), (12: 2,4,6) -> 6 rows.
  EXPECT_EQ(result.rows.size(), 6u);
  EXPECT_GE(result.candidate_pool_size, 12);
}

TEST(Table2ExperimentTest, BruteForceValueDominatesHeuristic) {
  const Table2Result result =
      std::move(RunTable2Experiment(SmokeConfig())).ValueOrDie();
  for (const Table2Row& row : result.rows) {
    ASSERT_GE(row.brute_force_ms, 0.0);
    EXPECT_GE(row.brute_force_value, row.heuristic_value - 1e-9)
        << "m=" << row.m << " z=" << row.z;
  }
}

TEST(Table2ExperimentTest, Proposition1FairnessIdenticalWhenZGeqGroup) {
  // The observation the paper attaches to Table II.
  const Table2Result result =
      std::move(RunTable2Experiment(SmokeConfig())).ValueOrDie();
  for (const Table2Row& row : result.rows) {
    if (row.z >= 2) {  // group_size = 2
      EXPECT_DOUBLE_EQ(row.heuristic_fairness, 1.0)
          << "m=" << row.m << " z=" << row.z;
      EXPECT_DOUBLE_EQ(row.brute_force_fairness, 1.0)
          << "m=" << row.m << " z=" << row.z;
    }
  }
}

TEST(Table2ExperimentTest, CombinationCountsRecorded) {
  const Table2Result result =
      std::move(RunTable2Experiment(SmokeConfig())).ValueOrDie();
  for (const Table2Row& row : result.rows) {
    EXPECT_EQ(row.combinations,
              BruteForceSelector::CountCombinations(row.m, row.z));
  }
}

TEST(Table2ExperimentTest, MaxCombinationsSkipsBigCells) {
  Table2Config config = SmokeConfig();
  config.max_combinations = 100;  // C(8,2)=28 runs; C(12,6)=924 skipped
  const Table2Result result =
      std::move(RunTable2Experiment(config)).ValueOrDie();
  bool saw_run = false;
  bool saw_skip = false;
  for (const Table2Row& row : result.rows) {
    if (row.brute_force_ms >= 0) saw_run = true;
    if (row.brute_force_ms < 0) saw_skip = true;
  }
  EXPECT_TRUE(saw_run);
  EXPECT_TRUE(saw_skip);
}

TEST(Table2ExperimentTest, FailsWhenPoolSmallerThanM) {
  Table2Config config = SmokeConfig();
  config.m_values = {100000};
  EXPECT_TRUE(RunTable2Experiment(config).status().IsFailedPrecondition());
}

TEST(Table2ExperimentTest, FormatsTable) {
  const Table2Result result =
      std::move(RunTable2Experiment(SmokeConfig())).ValueOrDie();
  const std::string text = FormatTable2(result);
  EXPECT_NE(text.find("Brute-force (ms)"), std::string::npos);
  EXPECT_NE(text.find("Heuristic (ms)"), std::string::npos);
}

TEST(PaperTable2Test, VerbatimCellsAccessible) {
  EXPECT_DOUBLE_EQ(PaperTable2BruteForceMs(10, 4), 37.0);
  EXPECT_DOUBLE_EQ(PaperTable2HeuristicMs(30, 20), 83.0);
  EXPECT_DOUBLE_EQ(PaperTable2BruteForceMs(30, 16), 322371457.0);
  EXPECT_LT(PaperTable2BruteForceMs(10, 12), 0.0);  // unreported cell
}

}  // namespace
}  // namespace fairrec
