#include "eval/fairness_metrics.h"

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/selector_registry.h"
#include "tests/core/test_fixtures.h"

namespace fairrec {
namespace {

using testing_fixtures::ContextFromDense;
using testing_fixtures::kNaN;

// Member 0's A_u = {item0}, member 1's A_u = {item1} (top_k = 1).
GroupContext TwoMemberContext() {
  GroupContextOptions options;
  options.top_k = 1;
  return ContextFromDense(
      {
          {10.0, 0.0, 5.0, 0.0},
          {0.0, 8.0, 4.0, 0.0},
      },
      options);
}

TEST(FairnessMetricsTest, MatchesHandComputedReport) {
  // D = {item0, item2}: member 0 is fully served (satisfaction 1.0,
  // top-1 hit), member 1 gets 4 of a possible 8 and no hit.
  const GroupContext ctx = TwoMemberContext();
  const FairnessReport report =
      ComputeFairnessReportFromIndexes(ctx, {0, 2});
  EXPECT_EQ(report.members_counted, 2);
  EXPECT_EQ(report.satisfied_members, 1);
  EXPECT_DOUBLE_EQ(report.proportion_satisfied, 0.5);
  EXPECT_DOUBLE_EQ(report.satisfaction_min, 0.5);
  EXPECT_DOUBLE_EQ(report.satisfaction_max, 1.0);
  EXPECT_DOUBLE_EQ(report.satisfaction_mean, 0.75);
  EXPECT_DOUBLE_EQ(report.satisfaction_spread, 0.5);
  EXPECT_DOUBLE_EQ(report.min_max_ratio, 0.5);
  EXPECT_DOUBLE_EQ(report.envy_total, 0.5);
  EXPECT_DOUBLE_EQ(report.envy_max, 0.5);
  EXPECT_DOUBLE_EQ(report.envy_mean, 0.25);  // 0.5 / (2 * 1)
  EXPECT_EQ(report.package_quota, 1);
  EXPECT_DOUBLE_EQ(report.package_feasibility, 0.5);
}

TEST(FairnessMetricsTest, EvenSelectionHasNoEnvy) {
  // D = {item0, item1} serves both members their favourite.
  const GroupContext ctx = TwoMemberContext();
  const FairnessReport report =
      ComputeFairnessReportFromIndexes(ctx, {0, 1});
  EXPECT_EQ(report.satisfied_members, 2);
  EXPECT_DOUBLE_EQ(report.satisfaction_spread, 0.0);
  EXPECT_DOUBLE_EQ(report.min_max_ratio, 1.0);
  EXPECT_DOUBLE_EQ(report.envy_total, 0.0);
  EXPECT_DOUBLE_EQ(report.envy_mean, 0.0);
  EXPECT_DOUBLE_EQ(report.package_feasibility, 1.0);
}

TEST(FairnessMetricsTest, QuotaIsCappedAtTheMembersTopK) {
  // A quota of 5 cannot exceed |A_u| = 1, so a single hit stays feasible.
  const GroupContext ctx = TwoMemberContext();
  const FairnessReport report =
      ComputeFairnessReportFromIndexes(ctx, {0, 1}, /*package_quota=*/5);
  EXPECT_EQ(report.package_quota, 5);
  EXPECT_DOUBLE_EQ(report.package_feasibility, 1.0);
}

TEST(FairnessMetricsTest, UndefinedMembersAreExcludedFromStatistics) {
  GroupContextOptions options;
  options.top_k = 1;
  options.require_all_members = false;
  const GroupContext ctx = ContextFromDense(
      {
          {10.0, 2.0},
          {kNaN, kNaN},
      },
      options);
  const FairnessReport report = ComputeFairnessReportFromIndexes(ctx, {0});
  // Only member 0 has defined relevance; member 1 contributes to neither
  // the satisfaction distribution nor envy, and their quota collapses to 0.
  EXPECT_EQ(report.members_counted, 1);
  EXPECT_EQ(report.satisfied_members, 1);
  EXPECT_DOUBLE_EQ(report.proportion_satisfied, 0.5);
  EXPECT_DOUBLE_EQ(report.satisfaction_min, 1.0);
  EXPECT_DOUBLE_EQ(report.satisfaction_spread, 0.0);
  EXPECT_DOUBLE_EQ(report.min_max_ratio, 1.0);
  EXPECT_DOUBLE_EQ(report.envy_total, 0.0);
  EXPECT_DOUBLE_EQ(report.package_feasibility, 1.0);
}

TEST(FairnessMetricsTest, SelectionBreakdownsAgreeWithRawIndexes) {
  // A finalized Selection carries per-member breakdowns; the report built
  // from them must equal the one recomputed from the raw item list.
  const GroupContext ctx = TwoMemberContext();
  const std::unique_ptr<ItemSetSelector> selector =
      std::move(SelectorRegistry::Global().Create("algorithm1")).ValueOrDie();
  const Selection s = std::move(selector->Select(ctx, 2)).ValueOrDie();
  ASSERT_EQ(s.members.size(), 2u);
  const FairnessReport from_selection = ComputeFairnessReport(ctx, s);
  std::vector<int32_t> indexes;
  for (const ItemId item : s.items) {
    indexes.push_back(ctx.CandidateIndexOf(item));
  }
  const FairnessReport from_indexes =
      ComputeFairnessReportFromIndexes(ctx, indexes);
  EXPECT_DOUBLE_EQ(from_selection.satisfaction_mean,
                   from_indexes.satisfaction_mean);
  EXPECT_DOUBLE_EQ(from_selection.min_max_ratio, from_indexes.min_max_ratio);
  EXPECT_DOUBLE_EQ(from_selection.envy_total, from_indexes.envy_total);
  EXPECT_EQ(from_selection.satisfied_members, from_indexes.satisfied_members);
}

}  // namespace
}  // namespace fairrec
