#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/cohort_generator.h"
#include "data/corpus_generator.h"
#include "data/rating_generator.h"
#include "ontology/snomed_generator.h"

namespace fairrec {
namespace {

SyntheticOntology TestOntology() {
  SnomedGeneratorConfig config;
  config.num_clusters = 4;
  config.cluster_depth = 3;
  config.seed = 5;
  return std::move(GenerateSnomedLikeOntology(config)).ValueOrDie();
}

TEST(CorpusGeneratorTest, ValidatesConfig) {
  CorpusConfig bad;
  bad.num_documents = 0;
  EXPECT_TRUE(GenerateCorpus(bad).status().IsInvalidArgument());
  bad = CorpusConfig{};
  bad.num_topics = -1;
  EXPECT_TRUE(GenerateCorpus(bad).status().IsInvalidArgument());
}

TEST(CorpusGeneratorTest, EveryTopicPopulatedAndQualityInRange) {
  CorpusConfig config;
  config.num_documents = 50;
  config.num_topics = 7;
  const Corpus corpus = std::move(GenerateCorpus(config)).ValueOrDie();
  ASSERT_EQ(corpus.documents.size(), 50u);
  std::set<int32_t> topics;
  for (const Document& doc : corpus.documents) {
    EXPECT_GE(doc.topic, 0);
    EXPECT_LT(doc.topic, 7);
    EXPECT_GE(doc.quality, 0.0);
    EXPECT_LE(doc.quality, 1.0);
    EXPECT_FALSE(doc.title.empty());
    topics.insert(doc.topic);
  }
  EXPECT_EQ(topics.size(), 7u);
}

TEST(CorpusGeneratorTest, Deterministic) {
  CorpusConfig config;
  const Corpus a = std::move(GenerateCorpus(config)).ValueOrDie();
  const Corpus b = std::move(GenerateCorpus(config)).ValueOrDie();
  ASSERT_EQ(a.documents.size(), b.documents.size());
  for (size_t i = 0; i < a.documents.size(); ++i) {
    EXPECT_EQ(a.documents[i].title, b.documents[i].title);
    EXPECT_DOUBLE_EQ(a.documents[i].quality, b.documents[i].quality);
  }
}

TEST(CohortGeneratorTest, ValidatesConfig) {
  const SyntheticOntology ontology = TestOntology();
  CohortConfig bad;
  bad.num_patients = 0;
  EXPECT_TRUE(GenerateCohort(bad, ontology).status().IsInvalidArgument());
  bad = CohortConfig{};
  bad.min_primary_problems = 3;
  bad.max_primary_problems = 1;
  EXPECT_TRUE(GenerateCohort(bad, ontology).status().IsInvalidArgument());
}

TEST(CohortGeneratorTest, ProfilesRespectConfigBounds) {
  const SyntheticOntology ontology = TestOntology();
  CohortConfig config;
  config.num_patients = 100;
  config.min_age = 30;
  config.max_age = 40;
  config.comorbidity_prob = 0.0;
  const Cohort cohort = std::move(GenerateCohort(config, ontology)).ValueOrDie();
  EXPECT_EQ(cohort.profiles.size(), 100);
  ASSERT_EQ(cohort.cluster_of_user.size(), 100u);
  for (const UserId u : cohort.profiles.Users()) {
    const PatientProfile& p = cohort.profiles.Get(u);
    EXPECT_GE(p.age, 30);
    EXPECT_LE(p.age, 40);
    EXPECT_GE(static_cast<int32_t>(p.problems.size()),
              config.min_primary_problems);
    EXPECT_LE(static_cast<int32_t>(p.problems.size()),
              config.max_primary_problems);
    EXPECT_GE(static_cast<int32_t>(p.medications.size()),
              config.min_medications);
    EXPECT_NE(p.gender, Gender::kUnknown);
  }
}

TEST(CohortGeneratorTest, PrimaryProblemsComeFromAssignedCluster) {
  const SyntheticOntology ontology = TestOntology();
  CohortConfig config;
  config.num_patients = 60;
  config.comorbidity_prob = 0.0;  // no cross-cluster noise
  const Cohort cohort = std::move(GenerateCohort(config, ontology)).ValueOrDie();
  for (const UserId u : cohort.profiles.Users()) {
    const int32_t cluster = cohort.cluster_of_user[static_cast<size_t>(u)];
    const ConceptId root =
        ontology.cluster_roots[static_cast<size_t>(cluster)];
    for (const ConceptId problem : cohort.profiles.Get(u).problems) {
      EXPECT_TRUE(ontology.ontology.IsAncestorOf(root, problem))
          << "user " << u << " problem outside cluster";
    }
  }
}

TEST(CohortGeneratorTest, ComorbidityAddsCrossClusterProblems) {
  const SyntheticOntology ontology = TestOntology();
  CohortConfig config;
  config.num_patients = 200;
  config.comorbidity_prob = 1.0;
  config.min_primary_problems = 1;
  config.max_primary_problems = 1;
  const Cohort cohort = std::move(GenerateCohort(config, ontology)).ValueOrDie();
  int cross = 0;
  for (const UserId u : cohort.profiles.Users()) {
    if (cohort.profiles.Get(u).problems.size() == 2) ++cross;
  }
  EXPECT_EQ(cross, 200);  // every patient got exactly one comorbidity
}

TEST(RatingGeneratorTest, ValidatesConfig) {
  const Corpus corpus = std::move(GenerateCorpus({})).ValueOrDie();
  RatingGeneratorConfig bad;
  bad.density = 0.0;
  EXPECT_TRUE(
      GenerateRatings(bad, {0, 1}, corpus).status().IsInvalidArgument());
  bad = RatingGeneratorConfig{};
  EXPECT_TRUE(GenerateRatings(bad, {}, corpus).status().IsInvalidArgument());
}

TEST(RatingGeneratorTest, DensityRoughlyMatches) {
  const Corpus corpus = std::move(GenerateCorpus({})).ValueOrDie();
  RatingGeneratorConfig config;
  config.density = 0.10;
  std::vector<int32_t> clusters(300);
  for (size_t i = 0; i < clusters.size(); ++i) {
    clusters[i] = static_cast<int32_t>(i % 8);
  }
  const RatingMatrix m =
      std::move(GenerateRatings(config, clusters, corpus)).ValueOrDie();
  EXPECT_NEAR(m.Density(), 0.10, 0.02);
}

TEST(RatingGeneratorTest, RatingsAreOnScaleIntegers) {
  const Corpus corpus = std::move(GenerateCorpus({})).ValueOrDie();
  RatingGeneratorConfig config;
  config.density = 0.2;
  const RatingMatrix m =
      std::move(GenerateRatings(config, {0, 1, 2, 3, 4, 5}, corpus)).ValueOrDie();
  for (const RatingTriple& t : m.ToTriples()) {
    EXPECT_GE(t.value, kMinRating);
    EXPECT_LE(t.value, kMaxRating);
    EXPECT_DOUBLE_EQ(t.value, std::round(t.value));
  }
}

TEST(RatingGeneratorTest, OnTopicRatingsAreMoreFrequentAndHigher) {
  CorpusConfig corpus_config;
  corpus_config.num_documents = 400;
  corpus_config.num_topics = 4;
  const Corpus corpus = std::move(GenerateCorpus(corpus_config)).ValueOrDie();
  RatingGeneratorConfig config;
  config.density = 0.15;
  std::vector<int32_t> clusters(200, 0);  // everyone in cluster 0
  const RatingMatrix m =
      std::move(GenerateRatings(config, clusters, corpus)).ValueOrDie();
  int64_t on_count = 0;
  int64_t off_count = 0;
  double on_sum = 0.0;
  double off_sum = 0.0;
  for (const RatingTriple& t : m.ToTriples()) {
    if (corpus.documents[static_cast<size_t>(t.item)].topic == 0) {
      ++on_count;
      on_sum += t.value;
    } else {
      ++off_count;
      off_sum += t.value;
    }
  }
  ASSERT_GT(on_count, 0);
  ASSERT_GT(off_count, 0);
  // On-topic items are 1/4 of the corpus but boosted 3x -> their per-item
  // rate is ~3x the off-topic rate.
  const double per_item_on = static_cast<double>(on_count) / 100.0;
  const double per_item_off = static_cast<double>(off_count) / 300.0;
  EXPECT_GT(per_item_on, 2.0 * per_item_off);
  EXPECT_GT(on_sum / static_cast<double>(on_count),
            off_sum / static_cast<double>(off_count) + 0.5);
}

}  // namespace
}  // namespace fairrec
