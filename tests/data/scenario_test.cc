#include "data/scenario.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace fairrec {
namespace {

ScenarioConfig SmallConfig() {
  ScenarioConfig config;
  config.num_patients = 80;
  config.num_documents = 60;
  config.num_clusters = 4;
  config.rating_density = 0.15;
  config.seed = 321;
  return config;
}

TEST(ScenarioTest, BuildsConsistentWorld) {
  const Scenario s = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  EXPECT_EQ(s.cohort.profiles.size(), 80);
  EXPECT_EQ(s.corpus.documents.size(), 60u);
  EXPECT_EQ(s.ratings.num_users(), 80);
  EXPECT_LE(s.ratings.num_items(), 60);
  EXPECT_EQ(s.ontology.cluster_roots.size(), 4u);
  EXPECT_GT(s.ratings.num_ratings(), 0);
}

TEST(ScenarioTest, DeterministicInSeed) {
  const Scenario a = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  const Scenario b = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  EXPECT_EQ(a.ratings.ToTriples(), b.ratings.ToTriples());
  EXPECT_EQ(a.cohort.cluster_of_user, b.cohort.cluster_of_user);
}

TEST(ScenarioTest, DifferentSeedsDifferentWorlds) {
  ScenarioConfig other = SmallConfig();
  other.seed = 9999;
  const Scenario a = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  const Scenario b = std::move(BuildScenario(other)).ValueOrDie();
  EXPECT_NE(a.ratings.ToTriples(), b.ratings.ToTriples());
}

TEST(ScenarioTest, CohesiveGroupSharesOneCluster) {
  const Scenario s = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  const Group group = s.MakeCohesiveGroup(4, 7);
  ASSERT_EQ(group.size(), 4u);
  std::set<int32_t> clusters;
  for (const UserId u : group) {
    clusters.insert(s.cohort.cluster_of_user[static_cast<size_t>(u)]);
  }
  EXPECT_EQ(clusters.size(), 1u);
  // No duplicates.
  EXPECT_EQ(std::set<UserId>(group.begin(), group.end()).size(), 4u);
}

TEST(ScenarioTest, RandomGroupHasDistinctValidMembers) {
  const Scenario s = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  const Group group = s.MakeRandomGroup(6, 11);
  ASSERT_EQ(group.size(), 6u);
  EXPECT_EQ(std::set<UserId>(group.begin(), group.end()).size(), 6u);
  for (const UserId u : group) {
    EXPECT_GE(u, 0);
    EXPECT_LT(u, 80);
  }
}

TEST(ScenarioTest, GroupsDeterministicInSeed) {
  const Scenario s = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  EXPECT_EQ(s.MakeCohesiveGroup(4, 5), s.MakeCohesiveGroup(4, 5));
  EXPECT_EQ(s.MakeRandomGroup(4, 5), s.MakeRandomGroup(4, 5));
}

TEST(ScenarioTest, GroupsSortedAscending) {
  const Scenario s = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  const Group group = s.MakeCohesiveGroup(5, 3);
  EXPECT_TRUE(std::is_sorted(group.begin(), group.end()));
}

TEST(ScenarioTest, OversizedCohesiveGroupFallsBack) {
  const Scenario s = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  // No cluster has 60 members out of 80 across 4 clusters; the fallback
  // must still produce a usable random group.
  const Group group = s.MakeCohesiveGroup(60, 13);
  EXPECT_EQ(group.size(), 60u);
}

std::map<int32_t, int32_t> ClusterCounts(const Scenario& s,
                                         const Group& group) {
  std::map<int32_t, int32_t> counts;
  for (const UserId u : group) {
    ++counts[s.cohort.cluster_of_user[static_cast<size_t>(u)]];
  }
  return counts;
}

TEST(ScenarioTest, SkewedGroupHasExactlyOneMinorityMember) {
  const Scenario s = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  const Group group = s.MakeSkewedGroup(5, 17);
  ASSERT_EQ(group.size(), 5u);
  const std::map<int32_t, int32_t> counts = ClusterCounts(s, group);
  ASSERT_EQ(counts.size(), 2u);
  std::vector<int32_t> sizes;
  for (const auto& [cluster, count] : counts) sizes.push_back(count);
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes[0], 1);
  EXPECT_EQ(sizes[1], 4);
}

TEST(ScenarioTest, AdversarialGroupSplitsEvenlyAcrossTwoClusters) {
  const Scenario s = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  const Group group = s.MakeAdversarialGroup(6, 23);
  ASSERT_EQ(group.size(), 6u);
  const std::map<int32_t, int32_t> counts = ClusterCounts(s, group);
  ASSERT_EQ(counts.size(), 2u);
  for (const auto& [cluster, count] : counts) EXPECT_EQ(count, 3);
}

TEST(ScenarioTest, ColdStartGroupSeatsTheColdestRaters) {
  const Scenario s = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  const Group group = s.MakeColdStartGroup(4, 31);
  ASSERT_EQ(group.size(), 4u);
  // The single coldest rater (fewest ratings, ties toward the smaller id)
  // must be seated.
  UserId coldest = 0;
  for (UserId u = 1; u < s.ratings.num_users(); ++u) {
    if (s.ratings.UserDegree(u) < s.ratings.UserDegree(coldest)) coldest = u;
  }
  EXPECT_TRUE(std::find(group.begin(), group.end(), coldest) != group.end());
}

TEST(ScenarioTest, MakeGroupDispatchesOnShape) {
  const Scenario s = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  EXPECT_EQ(s.MakeGroup(GroupShape::kCohesive, 4, 9),
            s.MakeCohesiveGroup(4, 9));
  EXPECT_EQ(s.MakeGroup(GroupShape::kRandom, 4, 9), s.MakeRandomGroup(4, 9));
  EXPECT_EQ(s.MakeGroup(GroupShape::kSkewed, 4, 9), s.MakeSkewedGroup(4, 9));
  EXPECT_EQ(s.MakeGroup(GroupShape::kColdStart, 4, 9),
            s.MakeColdStartGroup(4, 9));
  EXPECT_EQ(s.MakeGroup(GroupShape::kAdversarial, 4, 9),
            s.MakeAdversarialGroup(4, 9));
}

TEST(ScenarioTest, GroupShapeNamesAreStable) {
  EXPECT_STREQ(GroupShapeName(GroupShape::kCohesive), "cohesive");
  EXPECT_STREQ(GroupShapeName(GroupShape::kRandom), "random");
  EXPECT_STREQ(GroupShapeName(GroupShape::kSkewed), "skewed");
  EXPECT_STREQ(GroupShapeName(GroupShape::kColdStart), "coldstart");
  EXPECT_STREQ(GroupShapeName(GroupShape::kAdversarial), "adversarial");
}

TEST(ScenarioTest, ShapedGroupsAreDeterministicAndDistinct) {
  const Scenario s = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  for (const GroupShape shape :
       {GroupShape::kSkewed, GroupShape::kColdStart,
        GroupShape::kAdversarial}) {
    const Group a = s.MakeGroup(shape, 6, 41);
    EXPECT_EQ(a, s.MakeGroup(shape, 6, 41)) << GroupShapeName(shape);
    ASSERT_EQ(a.size(), 6u) << GroupShapeName(shape);
    EXPECT_EQ(std::set<UserId>(a.begin(), a.end()).size(), 6u)
        << GroupShapeName(shape);
  }
}

}  // namespace
}  // namespace fairrec
