#include "data/scenario.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace fairrec {
namespace {

ScenarioConfig SmallConfig() {
  ScenarioConfig config;
  config.num_patients = 80;
  config.num_documents = 60;
  config.num_clusters = 4;
  config.rating_density = 0.15;
  config.seed = 321;
  return config;
}

TEST(ScenarioTest, BuildsConsistentWorld) {
  const Scenario s = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  EXPECT_EQ(s.cohort.profiles.size(), 80);
  EXPECT_EQ(s.corpus.documents.size(), 60u);
  EXPECT_EQ(s.ratings.num_users(), 80);
  EXPECT_LE(s.ratings.num_items(), 60);
  EXPECT_EQ(s.ontology.cluster_roots.size(), 4u);
  EXPECT_GT(s.ratings.num_ratings(), 0);
}

TEST(ScenarioTest, DeterministicInSeed) {
  const Scenario a = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  const Scenario b = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  EXPECT_EQ(a.ratings.ToTriples(), b.ratings.ToTriples());
  EXPECT_EQ(a.cohort.cluster_of_user, b.cohort.cluster_of_user);
}

TEST(ScenarioTest, DifferentSeedsDifferentWorlds) {
  ScenarioConfig other = SmallConfig();
  other.seed = 9999;
  const Scenario a = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  const Scenario b = std::move(BuildScenario(other)).ValueOrDie();
  EXPECT_NE(a.ratings.ToTriples(), b.ratings.ToTriples());
}

TEST(ScenarioTest, CohesiveGroupSharesOneCluster) {
  const Scenario s = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  const Group group = s.MakeCohesiveGroup(4, 7);
  ASSERT_EQ(group.size(), 4u);
  std::set<int32_t> clusters;
  for (const UserId u : group) {
    clusters.insert(s.cohort.cluster_of_user[static_cast<size_t>(u)]);
  }
  EXPECT_EQ(clusters.size(), 1u);
  // No duplicates.
  EXPECT_EQ(std::set<UserId>(group.begin(), group.end()).size(), 4u);
}

TEST(ScenarioTest, RandomGroupHasDistinctValidMembers) {
  const Scenario s = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  const Group group = s.MakeRandomGroup(6, 11);
  ASSERT_EQ(group.size(), 6u);
  EXPECT_EQ(std::set<UserId>(group.begin(), group.end()).size(), 6u);
  for (const UserId u : group) {
    EXPECT_GE(u, 0);
    EXPECT_LT(u, 80);
  }
}

TEST(ScenarioTest, GroupsDeterministicInSeed) {
  const Scenario s = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  EXPECT_EQ(s.MakeCohesiveGroup(4, 5), s.MakeCohesiveGroup(4, 5));
  EXPECT_EQ(s.MakeRandomGroup(4, 5), s.MakeRandomGroup(4, 5));
}

TEST(ScenarioTest, GroupsSortedAscending) {
  const Scenario s = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  const Group group = s.MakeCohesiveGroup(5, 3);
  EXPECT_TRUE(std::is_sorted(group.begin(), group.end()));
}

TEST(ScenarioTest, OversizedCohesiveGroupFallsBack) {
  const Scenario s = std::move(BuildScenario(SmallConfig())).ValueOrDie();
  // No cluster has 60 members out of 80 across 4 clusters; the fallback
  // must still produce a usable random group.
  const Group group = s.MakeCohesiveGroup(60, 13);
  EXPECT_EQ(group.size(), 60u);
}

}  // namespace
}  // namespace fairrec
