#include "mf/matrix_factorization.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/group_context.h"
#include "eval/accuracy.h"
#include "ratings/splits.h"

namespace fairrec {
namespace {

/// Low-rank ground truth: rating(u, i) = clamp(round(base + u_sig * i_sig)).
RatingMatrix LowRankMatrix(int32_t users, int32_t items, double density,
                           uint64_t seed) {
  Rng rng(seed);
  std::vector<double> user_signal(static_cast<size_t>(users));
  std::vector<double> item_signal(static_cast<size_t>(items));
  for (double& x : user_signal) x = rng.UniformReal(-1.0, 1.0);
  for (double& x : item_signal) x = rng.UniformReal(-1.5, 1.5);
  RatingMatrixBuilder builder;
  builder.Reserve(users, items);
  for (UserId u = 0; u < users; ++u) {
    for (ItemId i = 0; i < items; ++i) {
      if (!rng.NextBool(density)) continue;
      const double raw = 3.0 + user_signal[static_cast<size_t>(u)] *
                                   item_signal[static_cast<size_t>(i)] * 2.0;
      const double stars = std::clamp(std::round(raw), 1.0, 5.0);
      EXPECT_TRUE(builder.Add(u, i, stars).ok());
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

MfConfig FastConfig() {
  MfConfig config;
  config.num_factors = 8;
  config.num_epochs = 25;
  config.learning_rate = 0.02;
  config.regularization = 0.02;
  config.seed = 5;
  return config;
}

TEST(MatrixFactorizationTest, ValidatesConfigAndInput) {
  const RatingMatrix empty = std::move(RatingMatrixBuilder().Build()).ValueOrDie();
  EXPECT_TRUE(MatrixFactorizationModel::Train(empty).status().IsInvalidArgument());
  const RatingMatrix m = LowRankMatrix(10, 10, 0.5, 1);
  MfConfig bad = FastConfig();
  bad.num_factors = 0;
  EXPECT_TRUE(MatrixFactorizationModel::Train(m, bad).status().IsInvalidArgument());
  bad = FastConfig();
  bad.num_epochs = 0;
  EXPECT_TRUE(MatrixFactorizationModel::Train(m, bad).status().IsInvalidArgument());
  bad = FastConfig();
  bad.learning_rate = 0.0;
  EXPECT_TRUE(MatrixFactorizationModel::Train(m, bad).status().IsInvalidArgument());
  bad = FastConfig();
  bad.regularization = -1.0;
  EXPECT_TRUE(MatrixFactorizationModel::Train(m, bad).status().IsInvalidArgument());
}

TEST(MatrixFactorizationTest, TrainRmseDecreasesAcrossEpochs) {
  const RatingMatrix m = LowRankMatrix(60, 50, 0.4, 2);
  std::vector<double> rmse;
  const auto model = MatrixFactorizationModel::Train(m, FastConfig(), &rmse);
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(rmse.size(), 25u);
  EXPECT_LT(rmse.back(), rmse.front());
  EXPECT_LT(rmse.back(), 1.0);  // fits a genuinely low-rank signal
}

TEST(MatrixFactorizationTest, PredictionsStayOnScale) {
  const RatingMatrix m = LowRankMatrix(40, 30, 0.4, 3);
  const auto model =
      std::move(MatrixFactorizationModel::Train(m, FastConfig())).ValueOrDie();
  Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    const auto u = static_cast<UserId>(rng.UniformInt(0, 39));
    const auto i = static_cast<ItemId>(rng.UniformInt(0, 29));
    const double p = model.Predict(u, i);
    EXPECT_GE(p, kMinRating);
    EXPECT_LE(p, kMaxRating);
  }
}

TEST(MatrixFactorizationTest, OutOfGridPredictsGlobalMean) {
  const RatingMatrix m = LowRankMatrix(10, 10, 0.6, 4);
  const auto model =
      std::move(MatrixFactorizationModel::Train(m, FastConfig())).ValueOrDie();
  EXPECT_DOUBLE_EQ(model.PredictRaw(-1, 0), model.global_mean());
  EXPECT_DOUBLE_EQ(model.PredictRaw(0, 999), model.global_mean());
}

TEST(MatrixFactorizationTest, DeterministicInSeed) {
  const RatingMatrix m = LowRankMatrix(30, 25, 0.4, 5);
  const auto a = std::move(MatrixFactorizationModel::Train(m, FastConfig())).ValueOrDie();
  const auto b = std::move(MatrixFactorizationModel::Train(m, FastConfig())).ValueOrDie();
  for (UserId u = 0; u < 30; u += 7) {
    for (ItemId i = 0; i < 25; i += 5) {
      EXPECT_DOUBLE_EQ(a.PredictRaw(u, i), b.PredictRaw(u, i));
    }
  }
}

TEST(MatrixFactorizationTest, BeatsGlobalMeanOnHeldOutData) {
  const RatingMatrix full = LowRankMatrix(120, 80, 0.3, 6);
  const TrainTestSplit split =
      std::move(RandomHoldoutSplit(full, 0.2, 7)).ValueOrDie();
  const auto model =
      std::move(MatrixFactorizationModel::Train(split.train, FastConfig()))
          .ValueOrDie();

  const AccuracyStats mf = EvaluatePredictor(
      split.test,
      [&model](UserId u, ItemId i) { return model.Predict(u, i); });
  const double mean = model.global_mean();
  const AccuracyStats baseline = EvaluatePredictor(
      split.test, [mean](UserId, ItemId) { return mean; });

  EXPECT_DOUBLE_EQ(mf.coverage, 1.0);  // MF predicts every cell
  EXPECT_LT(mf.rmse, baseline.rmse);   // and beats the constant baseline
}

TEST(MatrixFactorizationTest, BiasesOffStillTrains) {
  const RatingMatrix m = LowRankMatrix(30, 30, 0.4, 8);
  MfConfig config = FastConfig();
  config.use_biases = false;
  std::vector<double> rmse;
  const auto model = MatrixFactorizationModel::Train(m, config, &rmse);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(rmse.back(), rmse.front());
}

TEST(MatrixFactorizationTest, RelevanceForGroupShapesMatchCfPath) {
  const RatingMatrix m = LowRankMatrix(50, 40, 0.35, 9);
  const auto model =
      std::move(MatrixFactorizationModel::Train(m, FastConfig())).ValueOrDie();
  const Group group{1, 5, 9};
  const auto members = model.RelevanceForGroup(m, group, 6);
  ASSERT_TRUE(members.ok());
  ASSERT_EQ(members->size(), 3u);
  const std::vector<ItemId> candidates = m.ItemsUnratedByAll(group);
  for (const MemberRelevance& member : *members) {
    // MF scores every candidate (no abstention).
    EXPECT_EQ(member.relevance.size(), candidates.size());
    EXPECT_LE(member.top_k.size(), 6u);
    EXPECT_TRUE(member.peers.empty());
    for (size_t i = 1; i < member.relevance.size(); ++i) {
      EXPECT_LT(member.relevance[i - 1].item, member.relevance[i].item);
    }
  }
  // The tables feed GroupContext::Build directly.
  GroupContextOptions options;
  options.top_k = 6;
  const auto context = GroupContext::Build(*members, options);
  ASSERT_TRUE(context.ok());
  EXPECT_EQ(context->num_candidates(), static_cast<int32_t>(candidates.size()));
}

TEST(MatrixFactorizationTest, RelevanceForGroupValidatesGroup) {
  const RatingMatrix m = LowRankMatrix(20, 20, 0.5, 10);
  const auto model =
      std::move(MatrixFactorizationModel::Train(m, FastConfig())).ValueOrDie();
  EXPECT_TRUE(model.RelevanceForGroup(m, {}, 5).status().IsInvalidArgument());
  EXPECT_TRUE(model.RelevanceForGroup(m, {0, 0}, 5).status().IsInvalidArgument());
  EXPECT_TRUE(model.RelevanceForGroup(m, {999}, 5).status().IsInvalidArgument());
  EXPECT_TRUE(model.RelevanceForGroup(m, {0}, 0).status().IsInvalidArgument());
}

}  // namespace
}  // namespace fairrec
